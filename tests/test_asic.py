"""Tests for the ASIC substrate: library, techmap, STA, power, placement."""

import random

import pytest

from repro.aig.aig import Aig, lit_not
from repro.aig.simulate import po_words, simulate_words
from repro.asic.celllib import CellLibrary, default_cells
from repro.asic.place import Placement, place, wire_capacitance
from repro.asic.power import analyze_power, simulate_netlist, switching_activities
from repro.asic.sta import analyze_timing
from repro.asic.techmap import tech_map
from repro.tt.truthtable import TruthTable


@pytest.fixture(scope="module")
def library():
    return CellLibrary()


class TestCellLibrary:
    def test_all_two_input_functions_match(self, library):
        """Every nontrivial 2-input function must be realizable."""
        for bits in range(16):
            t = TruthTable(bits, 2)
            if not t.support() == [0, 1]:
                continue  # constants and single-variable functions
            assert library.match(bits, 2) is not None, bin(bits)

    def test_match_semantics(self, library):
        """A match must actually compute the requested function."""
        rng = random.Random(0)
        checked = 0
        for bits in range(256):
            match = library.match(bits, 3)
            if match is None:
                continue
            checked += 1
            cell_table = TruthTable(match.cell.table, match.cell.num_inputs)
            for row in range(8):
                leaf_values = [(row >> i) & 1 for i in range(3)]
                pins = []
                for j in range(match.cell.num_inputs):
                    v = leaf_values[match.pin_leaf[j]]
                    pins.append(v ^ match.pin_compl[j])
                pin_row = sum(b << j for j, b in enumerate(pins))
                out = cell_table.value(pin_row) ^ match.output_compl
                assert out == (bits >> row) & 1, (bin(bits), match)
        assert checked > 50  # the library realizes ~100 of 256 3-input functions

    def test_inverter_lookup(self, library):
        assert library.inverter.name == "INV"
        with pytest.raises(KeyError):
            library.cell_by_name("NAND17")

    def test_cell_tables_consistent(self):
        for cell in default_cells():
            assert 0 <= cell.table < (1 << (1 << cell.num_inputs))
            assert cell.area > 0


class TestTechMap:
    def test_functional_equivalence(self, random_aig_factory, library):
        rng = random.Random(1)
        for seed in range(4):
            aig = random_aig_factory(8, 120, seed=seed)
            netlist = tech_map(aig, library)
            for _ in range(3):
                words = [rng.getrandbits(64) for _ in range(aig.num_pis)]
                golden = po_words(aig, simulate_words(aig, words))
                inputs = {aig.pi_name(i): words[i] for i in range(aig.num_pis)}
                values = simulate_netlist(netlist, inputs)
                assert [values[net] for _p, net in netlist.outputs] == golden

    def test_gates_topologically_ordered(self, random_aig_factory, library):
        aig = random_aig_factory(6, 80, seed=5)
        netlist = tech_map(aig, library)
        defined = set(netlist.inputs) | {"tie0", "tie1"}
        for gate in netlist.gates:
            for net in gate.inputs:
                assert net in defined, net
            defined.add(gate.output)

    def test_complemented_po(self, library):
        aig = Aig()
        a, b = aig.add_pis(2)
        aig.add_po(lit_not(aig.add_and(a, b)))
        netlist = tech_map(aig, library)
        values = simulate_netlist(netlist, {aig.pi_name(0): 0b11,
                                            aig.pi_name(1): 0b01})
        assert values[netlist.outputs[0][1]] & 0b11 == 0b10

    def test_area_positive(self, small_adder, library):
        netlist = tech_map(small_adder, library)
        assert netlist.area > 0
        assert netlist.leakage > 0


class TestSta:
    def test_arrival_monotone_along_paths(self, small_adder, library):
        netlist = tech_map(small_adder, library)
        report = analyze_timing(netlist, clock_period=100.0)
        for gate in netlist.gates:
            out_at = report.arrival[gate.output]
            for net in gate.inputs:
                assert out_at > report.arrival.get(net, 0.0)

    def test_slack_sign(self, small_adder, library):
        netlist = tech_map(small_adder, library)
        loose = analyze_timing(netlist, clock_period=1e9)
        assert loose.met and loose.tns == 0.0
        tight = analyze_timing(netlist, loose.critical_path_delay * 0.5)
        assert not tight.met
        assert tight.wns < 0
        assert tight.tns <= tight.wns

    def test_placement_increases_delay(self, small_adder, library):
        netlist = tech_map(small_adder, library)
        unplaced = analyze_timing(netlist, 100.0)
        placed = analyze_timing(netlist, 100.0, place(netlist))
        # die-scaled wire caps should not reduce the critical path
        assert placed.critical_path_delay >= unplaced.critical_path_delay * 0.5


class TestPower:
    def test_activity_bounds(self, small_adder, library):
        netlist = tech_map(small_adder, library)
        for activity in switching_activities(netlist).values():
            assert 0.0 <= activity <= 1.0

    def test_power_positive_and_scales_with_size(self, library,
                                                 random_aig_factory):
        small = tech_map(random_aig_factory(6, 30, seed=6), library)
        big = tech_map(random_aig_factory(6, 200, seed=6), library)
        p_small = analyze_power(small).dynamic
        p_big = analyze_power(big).dynamic
        assert 0 < p_small < p_big


class TestPlacement:
    def test_positions_inside_die(self, small_adder, library):
        netlist = tech_map(small_adder, library)
        placement = place(netlist)
        for x, y in placement.positions.values():
            assert 0 <= x <= placement.die_side
            assert 0 <= y <= placement.die_side * 1.5

    def test_wirelength_positive(self, small_adder, library):
        netlist = tech_map(small_adder, library)
        assert place(netlist).total_wirelength > 0

    def test_wire_capacitance_grows_with_fanout(self):
        assert wire_capacitance("n", 8) > wire_capacitance("n", 1)

    def test_empty_netlist(self):
        from repro.asic.techmap import Netlist
        placement = place(Netlist("empty"))
        assert placement.total_wirelength == 0.0
