"""Tests for ``repro.guard`` — the hardened flow execution layer.

Covers the four pillars of the robustness PR:

* **Budgets** — the deadline manager's degradation ladder (full → reduced
  → skip) and its effect on a running flow.
* **Equivalence guard** — the per-stage random-sim + SAT ladder, rollback
  on miscompare, and the counterexample attached to the report.
* **Checkpoint/resume** — atomic write-then-rename snapshots, the
  ``state.json`` commit point, and interrupted-then-resumed runs matching
  uninterrupted ones bit-for-bit.
* **Chaos** — the seeded fault plan's determinism and a full soak: the
  flow completes under injected faults with a SAT-equivalent result and
  every fault visible in the report.
"""

from __future__ import annotations

import json
import os
import warnings

import pytest

from repro.aig.aig import Aig, lit_not
from repro.errors import CheckpointError, EquivalenceError
from repro.guard.budget import FULL, REDUCED, SKIP, DeadlineManager
from repro.guard.chaos import (
    FAULT_KINDS,
    ChaosInterrupt,
    FaultPlan,
    corrupt_window_result,
)
from repro.guard.checkpoint import (
    CheckpointState,
    CheckpointStore,
    atomic_write_text,
    load_checkpoint,
)
from repro.guard.stage_guard import GuardReport, StageGuard
from repro.parallel.window_io import CompactAig
from repro.sat.equivalence import (
    assert_equivalent,
    check_equivalence,
    find_counterexample,
)
from repro.sbm.config import FlowConfig
from repro.sbm.flow import sbm_flow

from tests.conftest import make_random_aig


def signature(aig: Aig):
    """Node-for-node structural fingerprint, independent of node ids."""
    c = CompactAig.from_aig(aig)
    return (c.num_pis, tuple(c.gates), tuple(c.outputs))


def broken_copy(aig: Aig) -> Aig:
    """A same-size, non-equivalent copy: first PO complemented."""
    bad = aig.cleanup()
    bad.set_po(0, lit_not(bad.pos()[0]))
    return bad


# -- budgets ------------------------------------------------------------------

class TestDeadlineManager:
    def test_unbounded_budget_never_degrades(self):
        deadline = DeadlineManager(None, total_stages=8)
        for stage in range(8):
            plan = deadline.plan(f"s{stage}")
            assert plan.level == FULL
            deadline.finish(f"s{stage}")
        assert deadline.downgrades == []

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            DeadlineManager(0.0, total_stages=4)
        with pytest.raises(ValueError):
            DeadlineManager(-1.0, total_stages=4)

    def test_on_schedule_runs_full(self):
        clock = [0.0]
        deadline = DeadlineManager(100.0, total_stages=4,
                                   clock=lambda: clock[0])
        assert deadline.plan("a").level == FULL
        deadline.finish("a")
        clock[0] = 25.0  # exactly on schedule after 1/4 stages
        assert deadline.plan("b").level == FULL

    def test_behind_schedule_degrades(self):
        clock = [0.0]
        deadline = DeadlineManager(100.0, total_stages=4,
                                   clock=lambda: clock[0])
        deadline.plan("a")
        deadline.finish("a")
        clock[0] = 60.0  # 60% of budget burnt after 25% of the work
        plan = deadline.plan("b")
        assert plan.level == REDUCED
        assert [(p.stage, p.level) for p in deadline.downgrades] == \
            [("b", REDUCED)]

    def test_exhausted_budget_skips(self):
        clock = [0.0]
        deadline = DeadlineManager(10.0, total_stages=4,
                                   clock=lambda: clock[0])
        clock[0] = 10.0
        plan = deadline.plan("a")
        assert plan.level == SKIP
        assert plan.remaining_s == 0.0

    def test_to_dict_reports_downgrades(self):
        clock = [0.0]
        deadline = DeadlineManager(10.0, total_stages=2,
                                   clock=lambda: clock[0])
        clock[0] = 11.0
        deadline.plan("a")
        data = deadline.to_dict()
        assert data["budget_s"] == 10.0
        assert data["downgrades"] == [
            {"stage": "a", "level": "skip", "remaining_s": 0.0}]


class TestBudgetedFlow:
    def test_tight_budget_skips_stages_but_stays_equivalent(self):
        aig = make_random_aig(8, 150, seed=11)
        config = FlowConfig(iterations=1, flow_timeout_s=0.001)
        out, stats = sbm_flow(aig, config)
        assert stats.guard is not None
        assert stats.guard.skips > 0
        skipped = [r.name for r in stats.records if ":skipped" in r.name]
        assert skipped  # the skips are visible in the stage records too
        assert_equivalent(aig, out)

    def test_generous_budget_matches_unbudgeted_run(self):
        aig = make_random_aig(8, 150, seed=12)
        base, _ = sbm_flow(aig, FlowConfig(iterations=1))
        budgeted, stats = sbm_flow(
            aig, FlowConfig(iterations=1, flow_timeout_s=3600.0))
        assert signature(budgeted) == signature(base)
        assert stats.guard.skips == 0 and stats.guard.degradations == 0


# -- equivalence guard --------------------------------------------------------

class TestStageGuard:
    def test_accepts_equivalent_candidate(self):
        aig = make_random_aig(8, 120, seed=21)
        guard = StageGuard(aig.cleanup())
        assert guard.check(aig.cleanup()) is None
        assert guard.sat_checks == 1

    def test_fast_rung_catches_complemented_po(self):
        aig = make_random_aig(8, 120, seed=22)
        guard = StageGuard(aig.cleanup())
        cex = guard.check(broken_copy(aig))
        assert cex is not None
        assert guard.fast_rejects == 1  # never reached SAT
        assert guard.sat_checks == 0
        assert len(cex.inputs) == aig.num_pis
        # The counterexample genuinely distinguishes the two networks.
        assert find_counterexample(aig, broken_copy(aig)) is not None

    def test_commit_advances_reference(self):
        aig = make_random_aig(6, 80, seed=23)
        guard = StageGuard(aig.cleanup())
        smaller = aig.cleanup()
        guard.commit(smaller)
        assert guard.check(smaller.cleanup()) is None
        rolled = guard.rollback_copy()
        assert rolled is not guard.reference  # an editable copy
        assert rolled.num_ands == smaller.num_ands
        assert_equivalent(rolled, smaller)

    def test_flow_rolls_back_corrupted_stage(self):
        aig = make_random_aig(8, 150, seed=24)
        # Corrupt exactly one stage result via a forced stage fault; the
        # guard must roll it back and the flow must end equivalent.
        plan = FaultPlan(seed=1, rate=0.0,
                         forced={"stage:2:kernel": "corrupt-result"})
        config = FlowConfig(iterations=1, verify_each_step=True, chaos=plan)
        out, stats = sbm_flow(aig, config)
        guard = stats.guard
        assert guard.rollbacks == 1
        [event] = [e for e in guard.events if e.kind == "rolled_back"]
        assert event.stage == "kernel"
        cex = event.detail["counterexample"]
        assert isinstance(cex["inputs"], list)
        assert ("stage:2:kernel", "corrupt-result") in guard.faults
        assert any(":guard_rollback" in r.name for r in stats.records)
        assert_equivalent(aig, out)

    def test_verify_each_step_still_passes_clean_flows(self):
        aig = make_random_aig(8, 150, seed=25)
        base, _ = sbm_flow(aig, FlowConfig(iterations=1))
        guarded, stats = sbm_flow(
            aig, FlowConfig(iterations=1, verify_each_step=True))
        assert signature(guarded) == signature(base)
        assert stats.guard.rollbacks == 0


class TestEquivalenceError:
    def test_assert_equivalent_carries_counterexample(self):
        aig = make_random_aig(6, 60, seed=31)
        with pytest.raises(EquivalenceError) as excinfo:
            assert_equivalent(aig, broken_copy(aig))
        exc = excinfo.value
        assert exc.cex is not None and len(exc.cex) == aig.num_pis
        assert exc.po_index == 0
        # Still catchable as the historical failure type.
        assert isinstance(exc, AssertionError)

    def test_check_equivalence_returns_witness(self):
        aig = make_random_aig(6, 60, seed=32)
        ok, cex = check_equivalence(aig, broken_copy(aig))
        assert not ok and cex is not None
        ok, cex = check_equivalence(aig, aig.cleanup())
        assert ok and cex is None


# -- checkpoint / resume ------------------------------------------------------

class TestCheckpointStore:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "x.txt")
        atomic_write_text(path, "hello")
        atomic_write_text(path, "world")
        with open(path) as handle:
            assert handle.read() == "world"
        assert os.listdir(str(tmp_path)) == ["x.txt"]

    def test_save_load_roundtrip(self, tmp_path):
        aig = make_random_aig(6, 80, seed=41)
        store = CheckpointStore(str(tmp_path))
        state = CheckpointState(next_index=3, iteration=0, stage="mspf",
                                total_stages=8, design="t",
                                num_pis=aig.num_pis, num_pos=aig.num_pos,
                                depth_limit=12, runtime_s=1.5,
                                records=[{"name": "initial", "size": 80,
                                          "elapsed_s": 0.0}])
        store.save(state, aig, aig.cleanup())
        resumed = load_checkpoint(str(tmp_path))
        assert resumed.state.next_index == 3
        assert resumed.state.depth_limit == 12
        assert resumed.state.records[0]["name"] == "initial"
        assert resumed.network.num_pis == aig.num_pis
        assert_equivalent(aig, resumed.network)

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "empty"))
        store = CheckpointStore(str(tmp_path))
        assert store.load() is None  # missing_ok path

    def test_corrupt_state_raises(self, tmp_path):
        aig = make_random_aig(4, 30, seed=42)
        store = CheckpointStore(str(tmp_path))
        state = CheckpointState(next_index=1, iteration=0, stage="a",
                                total_stages=8, design="t",
                                num_pis=aig.num_pis, num_pos=aig.num_pos)
        store.save(state, aig, aig)
        with open(str(tmp_path / "state.json")) as handle:
            data = json.load(handle)
        data["schema"] = "something/else"
        with open(str(tmp_path / "state.json"), "w") as handle:
            json.dump(data, handle)
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path))


class TestResume:
    def test_interrupt_then_resume_matches_uninterrupted(self, tmp_path):
        aig = make_random_aig(8, 150, seed=43)
        base, _ = sbm_flow(aig, FlowConfig(iterations=1))
        ckpt = str(tmp_path / "ckpt")
        plan = FaultPlan(seed=5, rate=0.0, interrupt_after=3)
        with pytest.raises(ChaosInterrupt) as excinfo:
            sbm_flow(aig, FlowConfig(iterations=1, checkpoint_dir=ckpt,
                                     chaos=plan))
        assert excinfo.value.stage_index == 3
        out, stats = sbm_flow(aig, FlowConfig(iterations=1),
                              resume_from=ckpt)
        assert signature(out) == signature(base)
        assert stats.guard.resumed_from == 4
        # The resumed stats contain the pre-interrupt stage records too.
        names = [r.name for r in stats.records]
        assert "initial" in names and "final" in names

    def test_checkpoints_committed_after_every_stage(self, tmp_path):
        aig = make_random_aig(8, 120, seed=44)
        ckpt = str(tmp_path / "ckpt")
        out, stats = sbm_flow(
            aig, FlowConfig(iterations=1, checkpoint_dir=ckpt))
        # 9 stages per iteration -> 9 checkpoint commits.
        assert stats.guard.checkpoints == 9
        resumed = load_checkpoint(ckpt)
        assert resumed.state.next_index == 9
        assert signature(resumed.best) == signature(out)

    def test_resume_rejects_wrong_interface(self, tmp_path):
        aig = make_random_aig(8, 120, seed=45)
        ckpt = str(tmp_path / "ckpt")
        plan = FaultPlan(seed=5, rate=0.0, interrupt_after=1)
        with pytest.raises(ChaosInterrupt):
            sbm_flow(aig, FlowConfig(iterations=1, checkpoint_dir=ckpt,
                                     chaos=plan))
        other = make_random_aig(5, 40, seed=46)
        with pytest.raises(CheckpointError):
            sbm_flow(other, FlowConfig(iterations=1), resume_from=ckpt)

    def test_resume_rejects_different_flow_shape(self, tmp_path):
        aig = make_random_aig(8, 120, seed=47)
        ckpt = str(tmp_path / "ckpt")
        plan = FaultPlan(seed=5, rate=0.0, interrupt_after=1)
        with pytest.raises(ChaosInterrupt):
            sbm_flow(aig, FlowConfig(iterations=1, checkpoint_dir=ckpt,
                                     chaos=plan))
        with pytest.raises(CheckpointError):
            sbm_flow(aig, FlowConfig(iterations=2), resume_from=ckpt)


# -- chaos --------------------------------------------------------------------

class TestFaultPlan:
    def test_same_seed_same_draws(self):
        sites = [f"it1:kernel:w{i}" for i in range(200)]
        a = FaultPlan(seed=99, rate=0.2)
        b = FaultPlan(seed=99, rate=0.2)
        assert [a.draw(s) for s in sites] == [b.draw(s) for s in sites]
        assert a.injected == b.injected
        assert a.injected  # 200 sites at 20% must inject something

    def test_different_seeds_differ(self):
        sites = [f"w{i}" for i in range(300)]
        a = [FaultPlan(seed=1, rate=0.2).draw(s) for s in sites]
        b = [FaultPlan(seed=2, rate=0.2).draw(s) for s in sites]
        assert a != b

    def test_forced_overrides_and_logs(self):
        plan = FaultPlan(seed=0, rate=0.0, forced={"x": "worker-crash"})
        assert plan.draw("x") == "worker-crash"
        assert plan.draw("y") is None
        assert plan.injected == [("x", "worker-crash")]
        assert plan.injected_since(1) == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=0, kinds=("nonsense",))
        with pytest.raises(ValueError):
            FaultPlan(seed=0, forced={"x": "nonsense"})

    def test_draw_stage_only_corrupts(self):
        plan = FaultPlan(seed=3, stage_corrupt_rate=1.0)
        assert plan.draw_stage("stage:0:kernel") == "corrupt-result"
        plan = FaultPlan(seed=3, stage_corrupt_rate=0.0)
        assert plan.draw_stage("stage:0:kernel") is None

    def test_corrupt_window_result_flips_function(self):
        aig = make_random_aig(5, 40, seed=51)
        from repro.parallel import extract_task, whole_network_window
        task = extract_task(aig, whole_network_window(aig), 0)
        from repro.parallel.window_io import WindowResult
        clean = WindowResult(index=0, changed=False, optimized=None)
        corrupted = corrupt_window_result(task, clean)
        assert corrupted.changed and corrupted.payload["chaos"] == \
            "corrupt-result"
        ok, _ = check_equivalence(task.compact.to_aig(),
                                  corrupted.optimized.to_aig())
        assert not ok  # non-equivalent, same size: only a CEC can tell
        assert len(corrupted.optimized.gates) == len(task.compact.gates)


class TestChaosSoak:
    @pytest.mark.parametrize("seed", [7, 1234])
    def test_flow_survives_injected_faults(self, seed):
        aig = make_random_aig(9, 200, seed=61)
        plan = FaultPlan(seed=seed, rate=0.25, stage_corrupt_rate=0.2)
        config = FlowConfig(iterations=1, jobs=2, verify_each_step=True,
                            chaos=plan)
        out, stats = sbm_flow(aig, config)
        guard = stats.guard
        assert guard.chaos_seed == seed
        assert len(guard.faults) == len(plan.injected)
        # Every stage-level corruption was caught and rolled back.
        stage_faults = [s for s, k in guard.faults
                        if s.startswith("stage:") and k == "corrupt-result"]
        assert guard.rollbacks >= len(stage_faults)
        assert_equivalent(aig, out)

    def test_chaos_is_deterministic_across_runs(self):
        aig = make_random_aig(8, 150, seed=62)
        results = []
        for _ in range(2):
            plan = FaultPlan(seed=77, rate=0.3, stage_corrupt_rate=0.2)
            out, stats = sbm_flow(
                aig, FlowConfig(iterations=1, verify_each_step=True,
                                chaos=plan))
            results.append((signature(out), tuple(stats.guard.faults)))
        assert results[0] == results[1]


# -- report integration -------------------------------------------------------

class TestGuardReporting:
    def test_guard_report_counts(self):
        report = GuardReport()
        report.add("degraded", "kernel", 0)
        report.add("skipped", "mspf", 0)
        report.add("rolled_back", "kernel", 1, counterexample={"inputs": []})
        report.add("checkpoint", "kernel", 0)
        assert (report.degradations, report.skips, report.rollbacks,
                report.checkpoints) == (1, 1, 1, 1)
        data = report.to_dict()
        assert data["rollbacks"] == 1
        assert data["events"][2]["detail"]["counterexample"] == {"inputs": []}

    def test_flow_registers_guard_report_in_session(self, tmp_path):
        from repro import obs
        from repro.obs.report import build_report, validate_report
        aig = make_random_aig(8, 120, seed=71)
        session = obs.enable()
        try:
            sbm_flow(aig, FlowConfig(
                iterations=1, checkpoint_dir=str(tmp_path / "c")))
        finally:
            obs.disable()
        assert len(session.guard_reports) == 1
        report = build_report(session, command="test")
        validate_report(report)
        assert report["version"] == 3
        assert report["guard"][0]["checkpoints"] == 9


# -- CLI / config satellites --------------------------------------------------

class TestSatellites:
    def test_window_timeout_warns_once_when_serial(self):
        import repro.sbm.flow as flow_mod
        aig = make_random_aig(6, 60, seed=81)
        flow_mod._warned_inline_timeout = False
        try:
            config = FlowConfig(iterations=1, jobs=1, window_timeout_s=5.0)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                sbm_flow(aig, config)
                sbm_flow(aig, config)
            timeouts = [w for w in caught
                        if "window_timeout_s" in str(w.message)]
            assert len(timeouts) == 1  # one-time, not per-flow
        finally:
            flow_mod._warned_inline_timeout = False

    def test_cli_chaos_and_checkpoint_flags(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main
        ckpt = str(tmp_path / "ckpt")
        status = cli_main(["optimize", "cavlc", "--chaos", "3",
                           "--checkpoint-dir", ckpt, "--timeout", "600"])
        out = capsys.readouterr().out
        assert status == 0
        assert "verified=True" in out
        assert "guard :" in out and "checkpoints=" in out
        assert os.path.exists(os.path.join(ckpt, "state.json"))

    def test_cli_rejects_bad_guard_values(self):
        from repro.__main__ import main as cli_main
        with pytest.raises(SystemExit):
            cli_main(["optimize", "cavlc", "--timeout", "soon"])
        with pytest.raises(SystemExit):
            cli_main(["optimize", "cavlc", "--chaos", "tuesday"])
        with pytest.raises(SystemExit):
            cli_main(["optimize", "cavlc", "--timeout", "-5"])
