"""Tests for the gradient-based AIG engine (Section IV-A)."""

from repro.sat.equivalence import assert_equivalent, check_equivalence
from repro.sbm.config import GradientConfig
from repro.sbm.gradient import gradient_optimize
from repro.sbm.moves import DEFAULT_MOVES, Move


def test_default_moves_match_paper():
    """The paper's move list: rewriting, refactoring, resub, mspf resub,
    eliminate/simplify & kerneling; all but rewriting in two efforts."""
    names = {m.name for m in DEFAULT_MOVES}
    assert "rewrite" in names
    for base in ("resub", "refactor", "kernel", "mspf"):
        assert f"{base}_lo" in names
        assert f"{base}_hi" in names
    # rewriting is the unit-cost move
    assert min(m.cost for m in DEFAULT_MOVES) == \
        next(m.cost for m in DEFAULT_MOVES if m.name == "rewrite")


def test_function_preserved(random_aig_factory):
    for seed in range(4):
        aig = random_aig_factory(10, 200, seed=seed)
        reference = aig.cleanup()
        gradient_optimize(aig, GradientConfig(cost_budget=30))
        aig.check()
        ok, _ = check_equivalence(reference, aig.cleanup())
        assert ok, seed


def test_optimizes(random_aig_factory):
    aig = random_aig_factory(10, 250, seed=42)
    before = aig.cleanup().num_ands
    stats = gradient_optimize(aig, GradientConfig(cost_budget=40))
    assert aig.cleanup().num_ands < before
    assert stats.total_gain > 0


def test_budget_respected(random_aig_factory):
    aig = random_aig_factory(10, 250, seed=1)
    stats = gradient_optimize(aig, GradientConfig(cost_budget=10))
    # budget may be slightly exceeded by the last move, or extended
    limit = 10 + stats.budget_extensions * GradientConfig().budget_extension
    assert stats.cost_spent <= limit + max(m.cost for m in DEFAULT_MOVES)


def test_waterfall_starts_with_unit_cost_moves(random_aig_factory):
    aig = random_aig_factory(10, 200, seed=2)
    stats = gradient_optimize(aig, GradientConfig(cost_budget=5))
    # with a tiny budget only cheap moves are tried
    tried = set(stats.move_attempts)
    assert tried <= {"rewrite"} or "rewrite" in tried


def test_success_history_recorded(random_aig_factory):
    aig = random_aig_factory(10, 250, seed=3)
    stats = gradient_optimize(aig, GradientConfig(cost_budget=60))
    assert stats.moves_tried >= stats.moves_succeeded
    for name, wins in stats.move_success.items():
        assert wins <= stats.move_attempts[name]
    assert 0.0 <= stats.success_rate("rewrite") <= 1.0


def test_early_termination_on_zero_gradient():
    """A network at its local minimum terminates early (gain gradient 0)."""
    from repro.aig.aig import Aig
    aig = Aig()
    a, b = aig.add_pis(2)
    aig.add_po(aig.add_and(a, b))
    stats = gradient_optimize(aig, GradientConfig(cost_budget=1000,
                                                  window_k=2))
    assert stats.cost_spent < 1000


def test_parallel_selection_mode(random_aig_factory):
    aig = random_aig_factory(8, 120, seed=4)
    reference = aig.cleanup()
    moves = [m for m in DEFAULT_MOVES if m.name in ("rewrite", "resub_lo")]
    gradient_optimize(aig, GradientConfig(cost_budget=12), moves=moves,
                      selection="parallel")
    aig.check()
    assert_equivalent(reference, aig.cleanup())


def test_custom_move_injection(random_aig_factory):
    calls = []

    def noop(aig, window):
        calls.append(len(window.nodes))
        return 0

    aig = random_aig_factory(8, 100, seed=5)
    gradient_optimize(aig, GradientConfig(cost_budget=6),
                      moves=[Move("noop", 1, noop)])
    assert calls  # the engine exercised the injected move
