"""Tests for the live progress bus (repro.obs.live).

Covers the tentpole contracts of the second observability layer:

* zero-cost disabled semantics (the NULL_BUS singleton),
* bounded non-blocking emission with counted drops,
* **payload determinism** — the ``jobs=4`` stream carries bit-identical
  payloads to ``jobs=1`` (only the envelope timing differs),
* the consumers (JSONL sink, TTY renderer, background pump, heartbeats)
  and the ``live_session`` CLI wrapper,
* the truncation-tolerant streaming JSONL reader.
"""

import io
import json
import time
import warnings

import pytest

from tests.conftest import make_random_aig
from repro import obs
from repro.obs.live import (
    NULL_BUS,
    EventBus,
    JsonlEventSink,
    LivePump,
    ProgressEvent,
    TtyProgressSink,
    live_session,
)
from repro.obs.tracer import iter_jsonl
from repro.sbm.config import FlowConfig
from repro.sbm.flow import sbm_flow


@pytest.fixture(autouse=True)
def _no_leaked_bus():
    yield
    obs.disable_live()


class TestEventBus:
    def test_emit_drain_order_and_envelope(self):
        bus = EventBus()
        bus.emit("a", x=1)
        bus.emit("b", y=2)
        events = bus.drain()
        assert [e.kind for e in events] == ["a", "b"]
        assert [e.seq for e in events] == [0, 1]
        assert events[0].payload == {"x": 1}
        assert events[0].t >= 0.0
        assert bus.drain() == []

    def test_full_queue_drops_and_counts(self):
        bus = EventBus(capacity=3)
        for i in range(10):
            bus.emit("e", i=i)
        assert len(bus) == 3
        assert bus.dropped == 7
        # drains recover capacity
        assert [e.payload["i"] for e in bus.drain()] == [0, 1, 2]
        bus.emit("late", i=99)
        assert bus.drain()[0].payload == {"i": 99}

    def test_to_dict_is_json_line(self):
        event = ProgressEvent(3, 1.25, "stage_end", {"stage": "mspf"})
        line = json.dumps(event.to_dict(), sort_keys=True)
        assert json.loads(line) == {"seq": 3, "t": 1.25, "kind": "stage_end",
                                    "payload": {"stage": "mspf"}}

    def test_null_bus_is_disabled_noop(self):
        assert NULL_BUS.enabled is False
        NULL_BUS.emit("anything", x=1)   # must not raise or store
        assert NULL_BUS.drain() == []
        assert len(NULL_BUS) == 0
        assert NULL_BUS.dropped == 0

    def test_enable_disable_roundtrip(self):
        assert obs.live_bus() is NULL_BUS
        bus = obs.enable_live()
        assert obs.live_bus() is bus and bus.enabled
        assert obs.disable_live() is bus
        assert obs.live_bus() is NULL_BUS


def _flow_events(aig, jobs):
    bus = obs.enable_live()
    try:
        sbm_flow(aig, FlowConfig(iterations=1, jobs=jobs))
    finally:
        obs.disable_live()
    return bus.drain()


class TestFlowEmissions:
    def test_flow_emits_bracketed_stage_events(self):
        aig = make_random_aig(8, 300, seed=7)
        events = _flow_events(aig, jobs=1)
        kinds = [e.kind for e in events]
        assert kinds[0] == "flow_start" and kinds[-1] == "flow_end"
        assert kinds.count("stage_start") == kinds.count("stage_end")
        assert kinds.count("stage_start") >= 5
        start = events[0].payload
        assert start["design"] == aig.name
        assert start["stages"] == kinds.count("stage_start")
        # monotone envelope
        assert [e.seq for e in events] == list(range(len(events)))
        for a, b in zip(events, events[1:]):
            assert b.t >= a.t

    def test_payloads_carry_no_timing(self):
        aig = make_random_aig(8, 300, seed=7)
        for event in _flow_events(aig, jobs=1):
            for key in event.payload:
                assert "wall" not in key and "elapsed" not in key \
                    and not key.endswith("_s"), \
                    f"timing leaked into payload: {event.kind}.{key}"

    def test_jobs4_payloads_bit_identical_to_jobs1(self):
        """The determinism contract: only envelope timing may differ."""
        aig = make_random_aig(8, 300, seed=7)
        serial = [(e.kind, e.payload) for e in _flow_events(aig, jobs=1)
                  if e.kind != "heartbeat"]
        parallel = [(e.kind, e.payload) for e in _flow_events(aig, jobs=4)
                    if e.kind != "heartbeat"]
        assert serial == parallel

    def test_disabled_flow_emits_nothing(self):
        aig = make_random_aig(8, 200, seed=3)
        assert obs.live_bus() is NULL_BUS
        sbm_flow(aig, FlowConfig(iterations=1))
        assert NULL_BUS.drain() == []


class TestCampaignEmissions:
    def test_campaign_job_events(self):
        from repro.campaign.runner import CampaignJob, run_campaign
        aig = make_random_aig(8, 200, seed=5)
        bus = obs.enable_live()
        try:
            run_campaign([CampaignJob(name="one", benchmark="adhoc",
                                      network=aig,
                                      config=FlowConfig(iterations=1))])
        finally:
            obs.disable_live()
        events = bus.drain()
        kinds = [e.kind for e in events]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_end"
        assert "job_start" in kinds and "job_end" in kinds
        job_end = next(e for e in events if e.kind == "job_end")
        assert job_end.payload["name"] == "one"
        assert job_end.payload["outcome"] == "uncached"
        assert job_end.payload["nodes_after"] <= job_end.payload["nodes_before"]
        end = events[-1].payload
        assert end["uncached"] == 1 and end["errors"] == 0


class TestConsumers:
    def _events(self, *kinds, **first_payload):
        out = []
        for i, kind in enumerate(kinds):
            out.append(ProgressEvent(i, 0.1 * i, kind,
                                     first_payload if i == 0 else {}))
        return out

    def test_jsonl_sink_flushes_lines(self):
        stream = io.StringIO()
        sink = JsonlEventSink(stream)
        sink.handle(ProgressEvent(0, 0.5, "flow_start", {"design": "x"}))
        sink.handle(ProgressEvent(1, 0.6, "flow_end", {"design": "x"}))
        sink.close()
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2 and sink.written == 2
        assert json.loads(lines[0])["kind"] == "flow_start"

    def test_tty_sink_overwrites_line(self):
        stream = io.StringIO()
        sink = TtyProgressSink(stream, force_tty=True)
        sink.handle(ProgressEvent(0, 0.0, "flow_start",
                                  {"design": "d", "stages": 9, "nodes": 100}))
        sink.handle(ProgressEvent(1, 0.1, "stage_start",
                                  {"stage": "mspf", "index": 0, "total": 9}))
        sink.close()
        text = stream.getvalue()
        assert "\r\x1b[2K" in text
        assert "stage 1/9 mspf" in text
        assert text.endswith("\n")   # close reopens the prompt

    def test_non_tty_sink_prints_completion_lines(self):
        stream = io.StringIO()
        sink = TtyProgressSink(stream, force_tty=False)
        sink.handle(ProgressEvent(0, 0.0, "stage_start",
                                  {"stage": "mspf", "index": 0, "total": 9}))
        sink.handle(ProgressEvent(1, 0.2, "stage_end",
                                  {"stage": "mspf", "nodes": 90,
                                   "level": "full"}))
        sink.handle(ProgressEvent(2, 0.3, "flow_end",
                                  {"design": "d", "nodes": 90}))
        sink.close()
        text = stream.getvalue()
        assert "\r" not in text
        assert "stage 1/9 mspf: 90 nodes (full)" in text
        assert "flow d: 90 nodes" in text

    def test_pump_delivers_everything_before_stop(self):
        bus = EventBus()
        stream = io.StringIO()
        sink = JsonlEventSink(stream)
        pump = LivePump(bus, [sink], poll_s=0.01).start()
        for i in range(50):
            bus.emit("e", i=i)
        pump.stop()
        lines = stream.getvalue().strip().splitlines()
        assert [json.loads(line)["payload"]["i"] for line in lines] \
            == list(range(50))

    def test_pump_emits_heartbeats_when_quiet(self):
        bus = EventBus()
        stream = io.StringIO()
        sink = JsonlEventSink(stream)
        pump = LivePump(bus, [sink], poll_s=0.01, heartbeat_s=0.05).start()
        deadline = time.time() + 5.0
        while sink.written == 0 and time.time() < deadline:
            time.sleep(0.01)
        pump.stop()
        kinds = [json.loads(line)["kind"]
                 for line in stream.getvalue().strip().splitlines()]
        assert "heartbeat" in kinds

    def test_broken_sink_never_raises(self):
        class Broken:
            def handle(self, event):
                raise OSError("pipe gone")
        bus = EventBus()
        pump = LivePump(bus, [Broken()], poll_s=0.01)
        bus.emit("e")
        pump._dispatch(bus.drain())   # must swallow
        pump.stop()


class TestLiveSession:
    def test_noop_without_consumers(self):
        with live_session() as bus:
            assert bus is None
            assert obs.live_bus() is NULL_BUS

    def test_jsonl_session_streams_flow(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        aig = make_random_aig(8, 200, seed=11)
        with live_session(jsonl_path=path) as bus:
            assert obs.live_bus() is bus
            sbm_flow(aig, FlowConfig(iterations=1))
        assert obs.live_bus() is NULL_BUS
        kinds = [record["kind"] for record in iter_jsonl(path)]
        assert kinds[0] == "flow_start" and "flow_end" in kinds

    def test_progress_session_renders(self, tmp_path):
        stream = io.StringIO()
        aig = make_random_aig(8, 200, seed=11)
        with live_session(progress=True, stream=stream):
            sbm_flow(aig, FlowConfig(iterations=1))
        assert "nodes" in stream.getvalue()


class TestIterJsonl:
    def test_truncated_final_line_tolerated(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"ev": "start", "id": 0}) + "\n")
            handle.write(json.dumps({"ev": "end", "id": 0}) + "\n")
            handle.write('{"ev": "start", "id": 1, "na')   # torn write
        reader = iter_jsonl(path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            records = list(reader)
        assert len(records) == 2
        assert reader.skipped == 1
        assert any("undecodable" in str(w.message) for w in caught)

    def test_clean_file_no_warning(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"a": 1}) + "\n\n")   # blank line ok
        reader = iter_jsonl(path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert list(reader) == [{"a": 1}]
        assert reader.skipped == 0
        assert not caught

    def test_reader_is_reiterable(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"a": 1}) + "\nnot json\n")
        reader = iter_jsonl(path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert list(reader) == [{"a": 1}]
            assert list(reader) == [{"a": 1}]
        assert reader.skipped == 2   # counters accumulate


class TestCliFlags:
    def test_progress_jsonl_flag(self, tmp_path):
        from repro.__main__ import main as cli_main
        from repro.aig.io_aiger import write_aag
        aig = make_random_aig(8, 150, seed=9)
        src = str(tmp_path / "in.aag")
        write_aag(aig, src)
        out = str(tmp_path / "progress.jsonl")
        assert cli_main(["optimize", src, "--progress-jsonl", out]) == 0
        assert obs.live_bus() is NULL_BUS   # torn down on exit
        kinds = [r["kind"] for r in iter_jsonl(out)]
        assert "flow_start" in kinds and "flow_end" in kinds
