"""Tests for NPN canonicalization."""

import random

from repro.tt.npn import (
    apply_transform,
    invert_transform,
    npn_canonical,
    npn_classes_upto,
    npn_semicanonical,
)
from repro.tt.truthtable import TruthTable


def random_transform(rng, n):
    perm = list(range(n))
    rng.shuffle(perm)
    return (bool(rng.getrandbits(1)), rng.getrandbits(n), tuple(perm))


def test_canonical_invariant_under_transforms():
    rng = random.Random(7)
    for _ in range(120):
        n = rng.randint(1, 4)
        t = TruthTable(rng.getrandbits(1 << n), n)
        canon, _tr = npn_canonical(t)
        t2 = apply_transform(t, random_transform(rng, n))
        canon2, _tr2 = npn_canonical(t2)
        assert canon == canon2


def test_canonical_transform_is_correct():
    rng = random.Random(8)
    for _ in range(80):
        n = rng.randint(1, 4)
        t = TruthTable(rng.getrandbits(1 << n), n)
        canon, tr = npn_canonical(t)
        assert apply_transform(t, tr) == canon


def test_invert_transform_round_trips():
    rng = random.Random(9)
    for _ in range(80):
        n = rng.randint(1, 4)
        t = TruthTable(rng.getrandbits(1 << n), n)
        tr = random_transform(rng, n)
        inv = invert_transform(tr, n)
        assert apply_transform(apply_transform(t, tr), inv) == t


def test_canonical_is_minimal_encoding():
    rng = random.Random(10)
    for _ in range(20):
        n = rng.randint(1, 3)
        t = TruthTable(rng.getrandbits(1 << n), n)
        canon, _ = npn_canonical(t)
        # canonical must be <= any transform of t
        for _ in range(20):
            variant = apply_transform(t, random_transform(rng, n))
            assert canon.bits <= variant.bits


def test_semicanonical_transform_is_correct():
    rng = random.Random(11)
    for _ in range(80):
        n = rng.randint(1, 6)
        t = TruthTable(rng.getrandbits(1 << n), n)
        semi, tr = npn_semicanonical(t)
        assert apply_transform(t, tr) == semi


def test_semicanonical_output_phase_normalized():
    rng = random.Random(12)
    for _ in range(40):
        n = rng.randint(1, 5)
        t = TruthTable(rng.getrandbits(1 << n), n)
        semi, _ = npn_semicanonical(t)
        assert (semi.bits & 1) == 0


def test_npn_class_counts():
    # Known NPN class counts: n=1 -> 2 classes, n=2 -> 4 classes
    assert len(npn_classes_upto(1)) == 2
    assert len(npn_classes_upto(2)) == 4


def test_known_npn_equivalences():
    # AND-family: all eight 2-input AND/OR gates with input/output phases
    # form one class
    a = TruthTable.variable(0, 2)
    b = TruthTable.variable(1, 2)
    family = [a & b, a & ~b, ~a & b, ~a & ~b, a | b, ~(a & b), ~(a | b), ~a | b]
    canons = {npn_canonical(f)[0].bits for f in family}
    assert len(canons) == 1
    # XOR and XNOR form their own class
    assert npn_canonical(a ^ b)[0] == npn_canonical(~(a ^ b))[0]
    assert npn_canonical(a ^ b)[0] != npn_canonical(a & b)[0]
