"""Tests for the TruthTable value type."""

import pytest

from repro.errors import ReproError
from repro.tt.truthtable import TruthTable, table_mask, variable_table


class TestConstruction:
    def test_constants(self):
        assert TruthTable.constant(False, 3).bits == 0
        assert TruthTable.constant(True, 3).bits == 0xFF

    def test_variables(self):
        assert TruthTable.variable(0, 2).bits == 0b1010
        assert TruthTable.variable(1, 2).bits == 0b1100

    def test_from_values(self):
        t = TruthTable.from_values([0, 1, 1, 0], 2)
        assert t.bits == 0b0110

    def test_from_hex(self):
        t = TruthTable.from_hex("e8", 3)
        assert t.bits == 0xE8  # majority

    def test_bits_masked(self):
        t = TruthTable(0xFFFF, 2)
        assert t.bits == 0xF


class TestOperators:
    def test_boolean_ops(self):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        assert (a & b).bits == 0b1000
        assert (a | b).bits == 0b1110
        assert (a ^ b).bits == 0b0110
        assert (~a).bits == 0b0101

    def test_mismatched_vars_raise(self):
        with pytest.raises(ReproError):
            TruthTable.variable(0, 2) & TruthTable.variable(0, 3)

    def test_hash_and_eq(self):
        a = TruthTable(0b0110, 2)
        b = TruthTable(0b0110, 2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != TruthTable(0b0110, 3)


class TestQueries:
    def test_value_and_count(self):
        maj = TruthTable(0xE8, 3)
        assert maj.value(0b011) == 1
        assert maj.value(0b001) == 0
        assert maj.count_ones() == 4

    def test_support(self):
        t = TruthTable.variable(1, 3)
        assert t.support() == [1]
        assert not t.depends_on(0)
        assert t.depends_on(1)

    def test_constant_checks(self):
        assert TruthTable.constant(False, 2).is_const0()
        assert TruthTable.constant(True, 2).is_const1()


class TestTransforms:
    def test_cofactors(self):
        maj = TruthTable(0xE8, 3)
        pos = maj.cofactor(2, True)   # maj(a,b,1) = a|b
        neg = maj.cofactor(2, False)  # maj(a,b,0) = a&b
        a = TruthTable.variable(0, 3)
        b = TruthTable.variable(1, 3)
        assert pos == (a | b)
        assert neg == (a & b)

    def test_quantifiers(self):
        maj = TruthTable(0xE8, 3)
        assert maj.exists(2) == (TruthTable.variable(0, 3) | TruthTable.variable(1, 3))
        assert maj.forall(2) == (TruthTable.variable(0, 3) & TruthTable.variable(1, 3))

    def test_boolean_difference(self):
        # d(a&b)/da = b
        ab = TruthTable.variable(0, 2) & TruthTable.variable(1, 2)
        assert ab.boolean_difference(0) == TruthTable.variable(1, 2)

    def test_flip_variable_involution(self):
        t = TruthTable(0b01101001, 3)
        assert t.flip_variable(1).flip_variable(1) == t

    def test_swap_variables(self):
        a = TruthTable.variable(0, 3)
        assert a.swap_variables(0, 2) == TruthTable.variable(2, 3)
        t = TruthTable(0xE8, 3)  # majority is symmetric
        assert t.swap_variables(0, 1) == t

    def test_permute_identity_and_rotation(self):
        t = TruthTable(0b11001010, 3)
        assert t.permute([0, 1, 2]) == t
        rotated = t.permute([1, 2, 0])
        # applying the inverse brings it back
        assert rotated.permute([2, 0, 1]) == t

    def test_expand(self):
        a = TruthTable.variable(0, 1)
        expanded = a.expand(3)
        assert expanded == TruthTable.variable(0, 3)
        with pytest.raises(ReproError):
            expanded.expand(2)

    def test_shrink_to_support(self):
        t = TruthTable.variable(2, 4)
        small, sup = t.shrink_to_support()
        assert sup == [2]
        assert small == TruthTable.variable(0, 1)

    def test_to_hex_roundtrip(self):
        t = TruthTable(0xE8, 3)
        assert TruthTable.from_hex(t.to_hex(), 3) == t


def test_variable_table_out_of_range():
    with pytest.raises(ReproError):
        variable_table(3, 3)


def test_table_mask():
    assert table_mask(0) == 1
    assert table_mask(3) == 0xFF
