"""Tests for K-feasible cut enumeration."""

from repro.aig.aig import Aig, lit_node
from repro.aig.cuts import Cut, cut_cone_size, cut_volume_refs, enumerate_cuts


def test_every_node_has_trivial_cut(random_aig_factory):
    aig = random_aig_factory(6, 50, seed=0)
    cuts = enumerate_cuts(aig, k=4)
    for n in aig.ands():
        assert any(c.leaves == (n,) for c in cuts[n])


def test_cut_sizes_bounded(random_aig_factory):
    aig = random_aig_factory(8, 100, seed=1)
    for k in (2, 4, 6):
        cuts = enumerate_cuts(aig, k=k)
        for n in aig.ands():
            for cut in cuts[n]:
                assert len(cut.leaves) <= max(k, 1)


def test_cut_limit_respected(random_aig_factory):
    aig = random_aig_factory(8, 100, seed=2)
    cuts = enumerate_cuts(aig, k=4, cut_limit=3)
    for n in aig.ands():
        assert len(cuts[n]) <= 4  # 3 + trivial


def test_cuts_are_real_cuts(random_aig_factory):
    """Every path from a PI to the node must cross a cut leaf."""
    aig = random_aig_factory(6, 60, seed=3)
    cuts = enumerate_cuts(aig, k=4)
    for n in list(aig.ands())[:15]:
        for cut in cuts[n]:
            if cut.leaves == (n,):
                continue
            leaves = set(cut.leaves)
            # removing the leaves disconnects n from the PIs
            stack = [n]
            seen = set()
            while stack:
                m = stack.pop()
                if m in seen or m in leaves:
                    continue
                seen.add(m)
                assert not aig.is_pi(m), (n, cut.leaves)
                if aig.is_and(m):
                    stack.extend(lit_node(f) for f in aig.fanins(m))


def test_cut_tables_match_simulation(random_aig_factory):
    from repro.opt.refactor import window_function
    aig = random_aig_factory(6, 60, seed=4)
    cuts = enumerate_cuts(aig, k=4, compute_tables=True)
    checked = 0
    for n in list(aig.ands()):
        for cut in cuts[n]:
            if len(cut.leaves) < 2 or cut.table is None:
                continue
            expected = window_function(aig, n, list(cut.leaves))
            assert cut.table == expected.bits, (n, cut.leaves)
            checked += 1
        if checked > 40:
            break
    assert checked > 10


def test_cut_cone_size():
    aig = Aig()
    a, b, c, d = aig.add_pis(4)
    n1 = aig.add_and(a, b)
    n2 = aig.add_and(c, d)
    top = aig.add_and(n1, n2)
    aig.add_po(top)
    cut = Cut(tuple(sorted(aig.pis())))
    assert cut_cone_size(aig, lit_node(top), cut) == 3


def test_cut_volume_refs_counts_reclaimable():
    aig = Aig()
    a, b, c, d = aig.add_pis(4)
    n1 = aig.add_and(a, b)
    n2 = aig.add_and(c, d)
    top = aig.add_and(n1, n2)
    aig.add_po(top)
    aig.add_po(n1)  # n1 is externally referenced -> survives a rewrite
    cut = Cut(tuple(sorted(aig.pis())))
    assert cut_volume_refs(aig, lit_node(top), cut) == 2  # top and n2


def test_dominated_cuts_filtered():
    aig = Aig()
    a, b = aig.add_pis(2)
    n1 = aig.add_and(a, b)
    top = aig.add_and(n1, a)  # note: reconvergence
    aig.add_po(top)
    cuts = enumerate_cuts(aig, k=4)
    tn = lit_node(top)
    leaf_sets = [set(c.leaves) for c in cuts[tn]]
    for i, s1 in enumerate(leaf_sets):
        for j, s2 in enumerate(leaf_sets):
            if i != j:
                assert not (s1 < s2), (s1, s2)
