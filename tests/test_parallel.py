"""Tests for the process-parallel partition execution engine.

Covers the three pillars of ``repro.parallel``:

* **Transport** — :class:`CompactAig` round-trips a window through the
  plain-data encoding and everything that crosses the process boundary
  pickles cheaply.
* **Determinism** — ``jobs=4`` produces a node-for-node identical graph to
  ``jobs=1`` for every partition engine and for the full flow, on random
  networks and on EPFL-style benchmarks.
* **Fault isolation** — a worker that raises, hangs, or dies outright
  leaves the network functionally unchanged (SAT-verified) and is reported
  as a fallback rather than an error.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.aig.aig import Aig, lit_node
from repro.bench.registry import get_benchmark
from repro.parallel import (
    CompactAig,
    PartitionScheduler,
    extract_task,
    register_engine,
    run_partitioned_pass,
    run_window_task,
    whole_network_window,
)
from repro.partition.partitioner import PartitionConfig, partition_network
from repro.sat.equivalence import assert_equivalent
from repro.sbm.boolean_difference import boolean_difference_pass
from repro.sbm.config import (
    BooleanDifferenceConfig,
    FlowConfig,
    KernelConfig,
    MspfConfig,
)
from repro.sbm.flow import sbm_flow
from repro.sbm.hetero_kernel import hetero_kernel_pass
from repro.sbm.mspf import mspf_pass

from tests.conftest import make_random_aig

#: Small windows so even the test-sized networks produce several tasks.
SMALL_PARTS = PartitionConfig(max_levels=4, max_size=40, max_leaves=16)


def signature(aig: Aig):
    """Node-for-node structural fingerprint, independent of node ids.

    Uses the :class:`CompactAig` local renumbering (PIs, then live ANDs in
    topological order), so the fingerprint only depends on the stored graph
    structure — dead nodes and id gaps are ignored, and no rebuild happens
    that could itself reorder fanins.
    """
    c = CompactAig.from_aig(aig)
    return (c.num_pis, tuple(c.gates), tuple(c.outputs))


# -- fault-injection engines -------------------------------------------------
# Registered at import time so fork()ed workers inherit them through the
# parent's module state (names are resolved inside the worker).

def _boom_engine(sub, config):
    raise RuntimeError("injected failure")


def _sleepy_engine(sub, config):
    time.sleep(2.0)
    return False, None, {}


def _killer_engine(sub, config):
    os._exit(13)  # hard crash: no exception, no cleanup — breaks the pool


def _shrink_engine(sub, config):
    """A real (but trivial) optimizer: strashed rebuild of the window."""
    optimized = sub.cleanup()
    if optimized.num_ands < sub.num_ands:
        return True, optimized, {"shrunk": 1}
    return False, None, {}


register_engine("boom", _boom_engine)
register_engine("sleepy", _sleepy_engine)
register_engine("killer", _killer_engine)
register_engine("shrink", _shrink_engine)


# -- transport ---------------------------------------------------------------

class TestWindowTransport:
    def test_compact_roundtrip_identity(self):
        aig = make_random_aig(8, 120, seed=7)
        compact = CompactAig.from_aig(aig)
        rebuilt = compact.to_aig()
        assert signature(rebuilt) == signature(aig)
        assert_equivalent(aig, rebuilt)

    def test_compact_roundtrip_is_stable(self):
        aig = make_random_aig(6, 80, seed=3)
        once = CompactAig.from_aig(aig)
        twice = CompactAig.from_aig(once.to_aig())
        assert once == twice

    def test_extracted_window_pickles(self):
        aig = make_random_aig(10, 300, seed=11)
        windows = partition_network(aig, SMALL_PARTS)
        assert len(windows) > 1
        for i, window in enumerate(windows):
            blob = pickle.dumps(window)  # plain ints/lists only
            assert pickle.loads(blob) == window
            task = extract_task(aig, window, i)
            clone = pickle.loads(pickle.dumps(task))
            assert clone.compact == task.compact
            assert clone.index == i

    def test_task_matches_window_shape(self):
        aig = make_random_aig(10, 300, seed=11)
        window = partition_network(aig, SMALL_PARTS)[0]
        task = extract_task(aig, window, 0)
        assert task.compact.num_pis == len(window.leaves)
        assert len(task.compact.outputs) == len(window.roots)
        assert task.size == window.size

    def test_whole_network_window(self):
        aig = make_random_aig(6, 60, seed=5)
        window = whole_network_window(aig)
        assert window.leaves == aig.pis()
        assert set(window.nodes) == set(aig.topological_order())
        po_nodes = {lit_node(po) for po in aig.pos() if lit_node(po)}
        assert set(window.roots) == po_nodes

    def test_worker_runs_inline(self):
        aig = make_random_aig(8, 150, seed=9)
        task = extract_task(aig, whole_network_window(aig), 0)
        result = run_window_task("shrink", task, None)
        assert result.fallback is None
        if result.changed:
            assert_equivalent(task.compact.to_aig(),
                              result.optimized.to_aig())


# -- determinism -------------------------------------------------------------

ENGINE_CASES = [
    ("kernel", hetero_kernel_pass, lambda: KernelConfig(partition=SMALL_PARTS)),
    ("mspf", mspf_pass, lambda: MspfConfig(partition=SMALL_PARTS)),
    ("bdiff", boolean_difference_pass,
     lambda: BooleanDifferenceConfig(partition=SMALL_PARTS)),
]


class TestDeterminism:
    @pytest.mark.parametrize("name,pass_fn,make_config",
                             ENGINE_CASES, ids=[c[0] for c in ENGINE_CASES])
    def test_engine_jobs4_equals_jobs1(self, name, pass_fn, make_config):
        reference = make_random_aig(12, 500, seed=42)
        serial = reference.cleanup()
        parallel = reference.cleanup()
        pass_fn(serial, make_config(), jobs=1)
        pass_fn(parallel, make_config(), jobs=4)
        assert signature(parallel) == signature(serial)
        assert_equivalent(reference, parallel.cleanup())

    @pytest.mark.parametrize("bench", ["router", "cavlc"])
    def test_epfl_benchmarks_jobs4_equals_jobs1(self, bench):
        reference = get_benchmark(bench, scaled=True)
        for name, pass_fn, make_config in ENGINE_CASES:
            serial = reference.cleanup()
            parallel = reference.cleanup()
            pass_fn(serial, make_config(), jobs=1)
            pass_fn(parallel, make_config(), jobs=4)
            assert signature(parallel) == signature(serial), \
                f"{name} diverged on {bench}"
        assert_equivalent(reference, parallel.cleanup())

    def test_flow_jobs2_equals_jobs1(self):
        reference = get_benchmark("router", scaled=True)
        serial, _ = sbm_flow(reference, FlowConfig(iterations=1, jobs=1))
        parallel, _ = sbm_flow(reference, FlowConfig(iterations=1, jobs=2))
        assert signature(parallel) == signature(serial)
        assert_equivalent(reference, parallel)

    def test_jobs_zero_means_cpu_count(self):
        scheduler = PartitionScheduler(jobs=0)
        assert scheduler.jobs == (os.cpu_count() or 1)
        scheduler = PartitionScheduler(jobs=None)
        assert scheduler.jobs == (os.cpu_count() or 1)

    def test_report_telemetry(self):
        aig = make_random_aig(12, 500, seed=42)
        reference = aig.cleanup()
        report = run_partitioned_pass(aig, "shrink", None,
                                      partition_config=SMALL_PARTS, jobs=2)
        assert report.engine == "shrink"
        assert report.jobs == 2
        assert report.num_windows == len(report.records)
        assert report.num_windows > 1
        assert report.total_gain >= 0
        assert report.counter("shrunk") == report.num_applied
        text = report.format_report()
        assert "engine=shrink" in text and "jobs=2" in text
        assert_equivalent(reference, aig.cleanup())


# -- fault isolation ---------------------------------------------------------

class TestFaultIsolation:
    def test_worker_exception_falls_back(self):
        aig = make_random_aig(10, 400, seed=17)
        reference = aig.cleanup()
        before = signature(aig)
        report = run_partitioned_pass(aig, "boom", None,
                                      partition_config=SMALL_PARTS, jobs=2)
        assert report.num_windows > 1
        assert report.num_applied == 0
        assert report.num_fallbacks == report.num_windows
        assert all(r.fallback.startswith("worker-error:RuntimeError")
                   for r in report.records)
        # Network is untouched — not just equivalent, structurally identical.
        assert signature(aig) == before
        assert_equivalent(reference, aig.cleanup())

    def test_worker_timeout_falls_back(self):
        aig = make_random_aig(10, 250, seed=23)
        reference = aig.cleanup()
        before = signature(aig)
        scheduler = PartitionScheduler(jobs=2, window_timeout_s=0.25)
        report = scheduler.run_pass(aig, "sleepy", None,
                                    partition_config=SMALL_PARTS)
        assert report.num_windows > 1
        assert report.num_applied == 0
        assert "timeout" in report.fallback_reasons
        assert signature(aig) == before
        assert_equivalent(reference, aig.cleanup())

    def test_worker_crash_restarts_pool(self):
        aig = make_random_aig(10, 250, seed=29)
        reference = aig.cleanup()
        before = signature(aig)
        scheduler = PartitionScheduler(jobs=2, max_pool_restarts=1)
        report = scheduler.run_pass(aig, "killer", None,
                                    partition_config=SMALL_PARTS)
        assert report.num_windows > 1
        assert report.num_applied == 0
        assert report.num_fallbacks == report.num_windows
        assert report.pool_restarts >= 1
        reasons = report.fallback_reasons
        assert "worker-crashed" in reasons or "pool-restart-limit" in reasons
        assert signature(aig) == before
        assert_equivalent(reference, aig.cleanup())

    def test_pool_restart_exhaustion_reports_exact_cap(self):
        """At the restart cap every remaining window falls back, and
        ``pool_restarts`` equals the cap — not cap+1, not "at least"."""
        aig = make_random_aig(12, 600, seed=37)
        reference = aig.cleanup()
        for cap in (1, 2):
            work = aig.cleanup()
            before = signature(work)
            scheduler = PartitionScheduler(jobs=2, max_pool_restarts=cap)
            report = scheduler.run_pass(work, "killer", None,
                                        partition_config=SMALL_PARTS)
            assert report.num_windows > 1
            assert report.num_applied == 0
            # Every window is accounted for: crashed or abandoned.
            assert report.num_fallbacks == report.num_windows
            assert report.pool_restarts == cap
            assert "pool-restart-limit" in report.fallback_reasons
            assert signature(work) == before
            assert_equivalent(reference, work)

    def test_unknown_engine_falls_back(self):
        aig = make_random_aig(8, 150, seed=31)
        before = signature(aig)
        report = run_partitioned_pass(aig, "no-such-engine", None,
                                      partition_config=SMALL_PARTS, jobs=1)
        assert report.num_applied == 0
        assert all(r.fallback.startswith("worker-error:KeyError")
                   for r in report.records)
        assert signature(aig) == before


# -- CLI plumbing ------------------------------------------------------------

class TestJobsFlag:
    def test_extract_jobs_variants(self):
        from repro.__main__ import _extract_jobs
        assert _extract_jobs(["table1", "-j", "4"]) == (["table1"], 4)
        assert _extract_jobs(["--jobs", "8", "table2"]) == (["table2"], 8)
        assert _extract_jobs(["--jobs=0", "fig1"]) == (["fig1"], 0)
        assert _extract_jobs(["bench"]) == (["bench"], 1)
        with pytest.raises(SystemExit):
            _extract_jobs(["table1", "--jobs"])

    def test_flow_config_carries_jobs(self):
        config = FlowConfig(jobs=3, window_timeout_s=1.5)
        assert config.jobs == 3
        assert config.window_timeout_s == 1.5
