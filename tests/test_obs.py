"""Tests for the observability package (``repro.obs``).

Covers the four guarantees the package makes:

* **Tree correctness** — nested spans build the right parent/child tree,
  with attributes, bounded events, and wall/CPU times.
* **JSONL round-trip** — the event sink replays into the same tree that
  the tracer kept in memory.
* **Determinism** — the metrics merged back from ``jobs=4`` workers are
  identical to the ``jobs=1`` run (counts only, partition-order merge).
* **Zero cost when off** — the disabled singletons add no measurable
  overhead at instrumented call sites.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import obs
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, metric_key
from repro.obs.report import (
    ReportSchemaError,
    build_report,
    format_metrics_table,
    format_trace_table,
    validate_report,
    write_report,
)
from repro.obs.report import main as report_main
from repro.obs.tracer import (
    MAX_EVENTS_PER_SPAN,
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    load_jsonl,
)
from repro.parallel.stats import ParallelReport, WindowRecord
from repro.partition.partitioner import PartitionConfig
from repro.sbm.config import MspfConfig
from repro.sbm.flow import FlowStats
from repro.sbm.mspf import mspf_pass

from tests.conftest import make_random_aig

SMALL_PARTS = PartitionConfig(max_levels=4, max_size=40, max_leaves=16)


@pytest.fixture(autouse=True)
def _obs_disabled():
    """Every test starts and ends with observability off."""
    obs.disable()
    yield
    obs.disable()


# -- tracer -------------------------------------------------------------------

class TestTracer:
    def test_nesting_builds_tree(self):
        tracer = Tracer()
        with tracer.span("flow", kind="flow") as flow:
            assert tracer.current() is flow
            with tracer.span("stage_a", kind="stage") as a:
                a.set("nodes_before", 10)
                with tracer.span("window", kind="window"):
                    pass
            with tracer.span("stage_b", kind="stage"):
                pass
        assert tracer.current() is None
        assert [s.name for s in tracer.roots] == ["flow"]
        flow = tracer.roots[0]
        assert [c.name for c in flow.children] == ["stage_a", "stage_b"]
        assert flow.children[0].attrs["nodes_before"] == 10
        assert [c.name for c in flow.children[0].children] == ["window"]
        assert flow.children[0].parent_id == flow.span_id
        assert flow.wall_s >= flow.children[0].wall_s >= 0.0

    def test_record_attaches_closed_child(self):
        tracer = Tracer()
        with tracer.span("pass"):
            tracer.record("window[0]", kind="window", wall_s=1.25, gain=3)
        window = tracer.roots[0].children[0]
        assert window.wall_s == 1.25
        assert window.cpu_s == 0.0
        assert window.attrs == {"gain": 3}

    def test_events_are_bounded(self):
        tracer = Tracer()
        with tracer.span("stage") as sp:
            for i in range(MAX_EVENTS_PER_SPAN + 10):
                sp.event("move", index=i)
        span = tracer.roots[0]
        assert len(span.events) == MAX_EVENTS_PER_SPAN
        assert span.dropped_events == 10
        assert span.to_dict()["dropped_events"] == 10

    def test_max_spans_drops_beyond_cap(self):
        tracer = Tracer(max_spans=2)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            with tracer.span("c") as c:
                assert c is NULL_SPAN
        assert tracer.dropped_spans == 1
        assert [s.name for s in tracer.roots] == ["a", "b"]

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("stage"):
                raise ValueError("boom")
        assert tracer.roots[0].attrs["error"] == "ValueError"
        assert tracer.current() is None

    def test_null_tracer_is_free_of_state(self):
        span = NULL_TRACER.span("anything", kind="flow", attr=1)
        assert span is NULL_SPAN
        with span as inner:
            inner.set("key", "value")
            inner.event("event")
        NULL_TRACER.record("window", wall_s=1.0)
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.current() is None


class TestJsonlRoundTrip:
    def test_sink_replays_to_identical_tree(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        session = obs.enable(jsonl_path=path)
        with obs.span("flow", kind="flow", design="t") as flow:
            with obs.span("stage", kind="stage", nodes_before=7) as sp:
                sp.set("nodes_after", 5)
                sp.event("merge", cls=3)
            obs.tracer().record("window[1]", kind="window", wall_s=0.5,
                                applied=True)
            flow.set("nodes_after", 5)
        in_memory = [s.to_dict() for s in session.tracer.roots]
        obs.disable()
        assert load_jsonl(path) == in_memory

    def test_missing_end_event_keeps_partial_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"ev": "start", "id": 0, "parent": None,
                        "name": "flow", "kind": "flow", "t": 0.0}) + "\n")
        roots = load_jsonl(str(path))
        assert roots[0]["name"] == "flow"
        assert roots[0]["wall_s"] == 0.0


# -- metrics ------------------------------------------------------------------

class TestMetrics:
    def test_metric_key_sorts_labels(self):
        assert metric_key("m", {}) == "m"
        assert (metric_key("m", {"b": 2, "a": 1})
                == metric_key("m", {"a": 1, "b": 2})
                == "m{a=1,b=2}")

    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("moves", move="resub")
        reg.inc("moves", 2, move="resub")
        reg.set_gauge("budget", 10.0)
        reg.set_gauge("budget", 4.0)
        for v in (1.0, 3.0, 2.0):
            reg.observe("window_size", v)
        assert reg.counter("moves", move="resub") == 3
        assert reg.counters_with_prefix("moves") == {"moves{move=resub}": 3}
        assert reg.gauges["budget"] == 4.0
        hist = reg.histograms["window_size"]
        assert (hist["count"], hist["min"], hist["max"]) == (3, 1.0, 3.0)
        assert hist["mean"] == pytest.approx(2.0)

    def test_merge_is_order_independent(self):
        def snap(seed):
            reg = MetricsRegistry()
            reg.inc("rewrites", seed)
            reg.observe("gain", float(seed))
            return reg.snapshot()

        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(snap(1)), ab.merge(snap(5))
        ba.merge(snap(5)), ba.merge(snap(1))
        assert ab.to_dict() == ba.to_dict()
        assert ab.counter("rewrites") == 6

    def test_null_registry_records_nothing(self):
        NULL_METRICS.inc("x")
        NULL_METRICS.set_gauge("y", 1.0)
        NULL_METRICS.observe("z", 1.0)
        assert NULL_METRICS.is_empty()
        assert NULL_METRICS.snapshot() == {}


# -- worker-metric determinism ------------------------------------------------

class TestWorkerMetricsDeterminism:
    def _run_with_jobs(self, jobs: int):
        aig = make_random_aig(12, 500, seed=42)
        session = obs.enable()
        try:
            mspf_pass(aig, MspfConfig(partition=SMALL_PARTS), jobs=jobs)
            return session.metrics.snapshot()
        finally:
            obs.disable()

    def test_jobs4_metrics_equal_jobs1(self):
        serial = self._run_with_jobs(1)
        parallel = self._run_with_jobs(4)
        assert parallel == serial
        assert serial["counters"]["parallel.windows{engine=mspf}"] > 0
        assert "mspf.bdd_bailouts" in serial["counters"]


# -- zero cost when disabled --------------------------------------------------

class TestDisabledOverhead:
    def test_disabled_accessors_return_singletons(self):
        assert obs.tracer() is NULL_TRACER
        assert obs.metrics() is NULL_METRICS
        assert obs.span("anything") is NULL_SPAN
        assert not obs.enabled()

    def test_disabled_call_site_is_cheap(self):
        # The instrumented pattern, hammered: must stay in the
        # microseconds-per-call regime (generous absolute bound so slow
        # CI machines do not flake — a regression to real spans is ~100x).
        n = 50_000
        t0 = time.perf_counter()
        for i in range(n):
            with obs.span("stage", kind="stage", effort=1) as sp:
                sp.set("nodes_after", i)
            obs.metrics().inc("moves", move="resub")
        per_call_us = (time.perf_counter() - t0) / n * 1e6
        assert per_call_us < 50.0

    def test_enable_disable_swaps_cleanly(self):
        session = obs.enable()
        assert obs.enabled() and obs.session() is session
        with obs.span("s"):
            pass
        obs.disable()
        assert not obs.enabled() and obs.session() is None
        assert len(session.tracer.roots) == 1  # stays readable after disable

    def test_install_restores_previous_pair(self):
        local = MetricsRegistry()
        previous = obs.install(NULL_TRACER, local)
        try:
            obs.metrics().inc("worker_side")
        finally:
            obs.install(*previous)
        assert local.counter("worker_side") == 1
        assert obs.metrics() is NULL_METRICS


# -- FlowStats / ParallelReport satellites ------------------------------------

class TestFlowStats:
    def test_record_keeps_elapsed(self):
        stats = FlowStats()
        stats.record("initial", 100)
        stats.record("mspf[1]", 90, elapsed_s=0.5)
        assert stats.records[1].elapsed_s == 0.5
        assert stats.to_dict()["stages"][1] == {
            "name": "mspf[1]", "size": 90, "elapsed_s": 0.5}

    def test_stages_property_is_deprecated_tuple_view(self):
        stats = FlowStats()
        stats.record("initial", 100, elapsed_s=0.1)
        with pytest.warns(DeprecationWarning):
            assert stats.stages == [("initial", 100)]


class TestParallelReportSpeedup:
    def _report(self):
        report = ParallelReport(engine="mspf", jobs=4, elapsed_s=2.0,
                                pool_restarts=1)
        report.records = [
            WindowRecord(0, "mspf", 40, 10, wall_s=3.0, applied=True, gain=5),
            WindowRecord(1, "mspf", 40, 10, wall_s=1.0),
            WindowRecord(2, "mspf", 40, 10, wall_s=6.0, fallback="timeout"),
        ]
        return report

    def test_speedup_excludes_fallback_windows(self):
        report = self._report()
        assert report.worker_wall_s == pytest.approx(10.0)
        assert report.useful_worker_wall_s == pytest.approx(4.0)
        assert report.speedup == pytest.approx(2.0)

    def test_format_report_surfaces_pool_restarts(self):
        text = self._report().format_report()
        assert "pool_restarts=1" in text
        assert "useful 4.00s" in text


# -- run report ---------------------------------------------------------------

def _sample_session():
    session = obs.enable()
    with obs.span("flow", kind="flow", design="t", nodes_before=9) as flow:
        with obs.span("mspf", kind="stage") as sp:
            sp.set("nodes_after", 7)
        flow.set("nodes_after", 7)
    obs.metrics().inc("mspf.bdd_bailouts", 0)
    obs.metrics().inc("gradient.moves_tried", 3, move="resub")
    obs.metrics().observe("window.size", 40.0)
    stats = FlowStats(runtime_s=1.0)
    stats.record("initial", 9)
    stats.record("final", 7, elapsed_s=0.9)
    obs.record_flow_stats(stats)
    report = ParallelReport(engine="mspf", jobs=1, elapsed_s=0.2)
    report.records = [WindowRecord(0, "mspf", 9, 4, wall_s=0.1, applied=True,
                                   gain=2)]
    obs.record_parallel_report(report)
    obs.disable()
    return session


class TestRunReport:
    def test_build_and_validate(self):
        report = build_report(_sample_session(), command="optimize t")
        validate_report(report)
        assert report["metrics"]["counters"]["mspf.bdd_bailouts"] == 0
        assert report["flows"][0]["stages"][1]["elapsed_s"] == 0.9
        assert report["parallel_passes"][0]["speedup"] == pytest.approx(0.5)
        # The report must be pure JSON (round-trips losslessly).
        assert json.loads(json.dumps(report)) == report

    @pytest.mark.parametrize("corrupt", [
        lambda r: r.update(version=99),
        lambda r: r.update(schema="other/schema"),
        lambda r: r.pop("metrics"),
        lambda r: r["trace"][0].pop("children"),
        lambda r: r["trace"][0].update(wall_s="fast"),
        lambda r: r["flows"][0]["stages"][0].pop("elapsed_s"),
        lambda r: r["parallel_passes"][0].pop("useful_worker_wall_s"),
    ])
    def test_validator_rejects_drift(self, corrupt):
        report = build_report(_sample_session())
        corrupt(report)
        with pytest.raises(ReportSchemaError):
            validate_report(report)

    def test_v1_reports_still_validate(self):
        # Schema v2 added the "guard" section; pre-existing v1 reports
        # (no guard key) must keep validating.
        report = build_report(_sample_session())
        report["version"] = 1
        del report["guard"]
        validate_report(report)

    def test_v2_requires_guard_section(self):
        report = build_report(_sample_session())
        del report["guard"]
        with pytest.raises(ReportSchemaError):
            validate_report(report)
        report["guard"] = [{"rollbacks": 0}]  # missing required counters
        with pytest.raises(ReportSchemaError):
            validate_report(report)

    def test_cli_validator(self, tmp_path, capsys):
        path = str(tmp_path / "report.json")
        report = build_report(_sample_session(), command="optimize t")
        write_report(path, report)
        assert report_main([path]) == 0
        assert "valid repro.obs/run-report v3" in capsys.readouterr().out

        report["version"] = 99
        write_report(path, report)
        assert report_main([path]) == 1
        assert "SCHEMA ERROR" in capsys.readouterr().out
        assert report_main([]) == 2

    def test_tables_render(self):
        report = build_report(_sample_session())
        trace = format_trace_table(report["trace"])
        assert "flow" in trace and "mspf" in trace
        metrics = format_metrics_table(report["metrics"])
        assert "gradient.moves_tried{move=resub}" in metrics
        assert "histogram" in metrics


# -- CLI flags ----------------------------------------------------------------

class TestCliFlags:
    def test_extract_obs_strips_flags(self):
        from repro.__main__ import _extract_obs
        args, trace, jsonl, report = _extract_obs(
            ["optimize", "router", "--trace", "--trace-jsonl", "t.jsonl",
             "--report-json=out.json"])
        assert args == ["optimize", "router"]
        assert trace and jsonl == "t.jsonl" and report == "out.json"

    def test_extract_obs_defaults(self):
        from repro.__main__ import _extract_obs
        args, trace, jsonl, report = _extract_obs(["fig1"])
        assert args == ["fig1"]
        assert not trace and jsonl is None and report is None

    def test_value_flag_requires_value(self):
        from repro.__main__ import _extract_obs
        with pytest.raises(SystemExit):
            _extract_obs(["optimize", "--report-json"])

    def test_optimize_end_to_end_writes_valid_report(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main
        from repro.aig.io_aiger import write_aag
        aig = make_random_aig(10, 120, seed=7)
        src = str(tmp_path / "in.aag")
        write_aag(aig, src)
        out = str(tmp_path / "report.json")
        jsonl = str(tmp_path / "trace.jsonl")
        status = cli_main(["optimize", src, "--trace",
                           "--trace-jsonl", jsonl, "--report-json", out])
        assert status == 0
        assert not obs.enabled()  # CLI tears the session down
        with open(out) as handle:
            report = json.load(handle)
        validate_report(report)
        names = [s["name"] for s in report["trace"][0]["children"][0]
                 ["children"]]
        assert "mspf" in names and "gradient" in names
        counters = report["metrics"]["counters"]
        assert "mspf.bdd_bailouts" in counters
        assert any(k.startswith("gradient.moves_tried") for k in counters)
        assert load_jsonl(jsonl)[0]["name"] == "flow"
        captured = capsys.readouterr().out
        assert "flow" in captured and f"run report written to {out}" in captured
