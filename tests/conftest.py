"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.aig.aig import Aig


def make_random_aig(num_pis: int, num_nodes: int, seed: int,
                    num_pos: int = 8) -> Aig:
    """A random strashed AIG with redundancy (shared fixture logic).

    Randomly ANDs previously created literals with random complementations;
    the result is compacted so every node is PO-reachable.
    """
    rng = random.Random(seed)
    aig = Aig(f"rand{seed}")
    literals = aig.add_pis(num_pis)
    for _ in range(num_nodes):
        a = rng.choice(literals) ^ rng.getrandbits(1)
        b = rng.choice(literals) ^ rng.getrandbits(1)
        literals.append(aig.add_and(a, b))
    for literal in literals[-num_pos:]:
        aig.add_po(literal)
    return aig.cleanup()


@pytest.fixture
def random_aig_factory():
    """Factory fixture producing random AIGs."""
    return make_random_aig


@pytest.fixture
def small_adder():
    """A 4-bit ripple adder (17 POs)."""
    from repro.aig.compose import ripple_adder
    aig = Aig("add4")
    a = aig.add_pis(4, "a")
    b = aig.add_pis(4, "b")
    total, carry = ripple_adder(aig, a, b)
    for i, s in enumerate(total):
        aig.add_po(s, f"s{i}")
    aig.add_po(carry, "cout")
    return aig


@pytest.fixture
def small_mult():
    """A 4x4 array multiplier."""
    from repro.aig.compose import multiplier
    aig = Aig("mult4")
    a = aig.add_pis(4, "a")
    b = aig.add_pis(4, "b")
    for i, p in enumerate(multiplier(aig, a, b)):
        aig.add_po(p, f"p{i}")
    return aig
