"""Tests for the benchmark generators (functional correctness and profiles)."""

import math

import pytest

from repro.aig.simulate import po_words, simulate_words
from repro.bench import arith, control
from repro.bench.registry import (
    BENCHMARKS,
    PAPER,
    TABLE1_BENCHMARKS,
    TABLE2_BENCHMARKS,
    benchmark_names,
    get_benchmark,
)
from repro.errors import BenchmarkError


def run_single(aig, value_bits):
    """Evaluate *aig* on one assignment given as a list of 0/1 per PI."""
    words = [(1 << 64) - 1 if v else 0 for v in value_bits]
    return [w & 1 for w in po_words(aig, simulate_words(aig, words))]


def int_to_bits(value, width):
    return [(value >> i) & 1 for i in range(width)]


class TestArithGenerators:
    def test_adder(self):
        aig = arith.adder(6)
        for a, b in [(0, 0), (63, 63), (21, 42), (17, 5)]:
            outs = run_single(aig, int_to_bits(a, 6) + int_to_bits(b, 6))
            assert sum(o << i for i, o in enumerate(outs)) == a + b

    def test_bar_rotates(self):
        aig = arith.bar(8)
        data, shift = 0b10010110, 3
        outs = run_single(aig, int_to_bits(data, 8) + int_to_bits(shift, 3))
        got = sum(o << i for i, o in enumerate(outs))
        assert got == ((data << shift) | (data >> (8 - shift))) & 0xFF

    def test_div(self):
        aig = arith.div(5)
        for n, d in [(20, 3), (31, 1), (7, 7), (0, 5)]:
            outs = run_single(aig, int_to_bits(n, 5) + int_to_bits(d, 5))
            q = sum(outs[i] << i for i in range(5))
            r = sum(outs[5 + i] << i for i in range(5))
            assert (q, r) == (n // d, n % d)

    def test_sqrt(self):
        aig = arith.sqrt(8)
        for v in [0, 1, 35, 64, 255]:
            outs = run_single(aig, int_to_bits(v, 8))
            assert sum(o << i for i, o in enumerate(outs)) == math.isqrt(v)

    def test_square(self):
        aig = arith.square_unit(5)
        for v in [0, 7, 31]:
            outs = run_single(aig, int_to_bits(v, 5))
            assert sum(o << i for i, o in enumerate(outs)) == v * v

    def test_hypotenuse(self):
        aig = arith.hypotenuse_unit(4)
        for a, b in [(3, 4), (15, 15), (0, 9)]:
            outs = run_single(aig, int_to_bits(a, 4) + int_to_bits(b, 4))
            got = sum(o << i for i, o in enumerate(outs))
            assert got == math.isqrt(a * a + b * b)

    def test_log2_integer_part(self):
        aig = arith.log2_unit(8)
        for v in [1, 2, 4, 9, 100, 255]:
            outs = run_single(aig, int_to_bits(v, 8))
            int_part = sum(outs[i] << i for i in range(3))
            assert int_part == int(math.log2(v))

    def test_log2_fraction_approximates(self):
        aig = arith.log2_unit(8)
        for v in [3, 10, 100, 200]:
            outs = run_single(aig, int_to_bits(v, 8))
            int_part = sum(outs[i] << i for i in range(3))
            frac = sum(b / 2 ** (i + 1) for i, b in enumerate(outs[3:]))
            assert abs(int_part + frac - math.log2(v)) < 0.2

    def test_sin_approximates(self):
        aig = arith.sin_unit(8, iterations=8)
        for frac in [0.1, 0.4, 0.8]:
            v = int(frac * (1 << 8))
            outs = run_single(aig, int_to_bits(v, 8))
            got = sum(o << i for i, o in enumerate(outs)) / (1 << 8)
            assert abs(got - math.sin(frac * math.pi / 2)) < 0.08


class TestControlGenerators:
    def test_arbiter_grants_first_masked_request(self):
        aig = control.arbiter(4)
        # requests 0b1010, mask passing positions >= 2 (0b1100)
        outs = run_single(aig, int_to_bits(0b1010, 4) + int_to_bits(0b1100, 4))
        grants = outs[:4]
        assert grants == [0, 0, 0, 1]  # req at 3 is the first masked one
        assert outs[4] == 1  # any

    def test_arbiter_falls_back_to_unmasked(self):
        aig = control.arbiter(4)
        outs = run_single(aig, int_to_bits(0b0010, 4) + int_to_bits(0b1100, 4))
        assert outs[:4] == [0, 1, 0, 0]

    def test_arbiter_onehot_property(self):
        import random
        rng = random.Random(0)
        aig = control.arbiter(8)
        for _ in range(30):
            req = rng.getrandbits(8)
            mask = rng.getrandbits(8)
            outs = run_single(aig, int_to_bits(req, 8) + int_to_bits(mask, 8))
            grants = outs[:8]
            assert sum(grants) == (1 if req else 0)
            if req:
                granted = grants.index(1)
                assert (req >> granted) & 1

    def test_priority_encoder(self):
        aig = control.priority_encoder(8)
        for req in [0b00000001, 0b10000000, 0b00010100, 0]:
            outs = run_single(aig, int_to_bits(req, 8))
            valid = outs[-1]
            idx = sum(outs[i] << i for i in range(3))
            if req == 0:
                assert valid == 0
            else:
                assert valid == 1
                assert idx == (req & -req).bit_length() - 1

    def test_voter_majority(self):
        aig = control.voter(7)
        for v in [0b1111000, 0b0000111, 0b1010101, 0]:
            outs = run_single(aig, int_to_bits(v, 7))
            assert outs[0] == (bin(v).count("1") > 3)

    def test_voter_rejects_even_width(self):
        with pytest.raises(BenchmarkError):
            control.voter(8)

    def test_router_match_flag(self):
        import random
        rng = random.Random(1)
        aig = control.router()
        # with all entries disabled there is never a match
        outs = run_single(aig, [rng.getrandbits(1) for _ in range(12)] + [0] * 8)
        assert outs[-1] == 0

    def test_control_function_deterministic(self):
        a1 = control.control_function("c", 8, 6, seed=3)
        a2 = control.control_function("c", 8, 6, seed=3)
        from repro.aig.io_aiger import write_aag_string
        assert write_aag_string(a1) == write_aag_string(a2)

    def test_max_unit(self):
        aig = control.max_unit(4, operands=4)
        vals = [3, 14, 7, 9]
        bits = []
        for v in vals:
            bits += int_to_bits(v, 4)
        outs = run_single(aig, bits)
        assert sum(outs[i] << i for i in range(4)) == 14
        assert sum(outs[4 + i] << i for i in range(2)) == 1  # argmax index


class TestRegistry:
    def test_all_scaled_benchmarks_instantiate(self):
        for name in benchmark_names():
            aig = get_benchmark(name, scaled=True)
            assert aig.num_ands > 0
            assert aig.num_pis > 0

    def test_table_lists_are_registered(self):
        for name in TABLE1_BENCHMARKS + TABLE2_BENCHMARKS:
            assert name in BENCHMARKS

    def test_paper_references_present(self):
        for name in TABLE1_BENCHMARKS:
            assert PAPER[name].table1_luts is not None
        for name in TABLE2_BENCHMARKS:
            assert PAPER[name].table2_size is not None

    def test_native_io_profiles_match_paper(self):
        """The native generators must reproduce the paper's I/O counts for
        the structurally-defined benchmarks."""
        for name in ("arbiter", "priority", "voter", "square", "mult", "div"):
            bench = BENCHMARKS[name]
            aig = bench.native()
            assert (aig.num_pis, aig.num_pos) == bench.reference.io, name
