"""Tests for the CDCL SAT solver."""

import random

import pytest

from repro.errors import SatError
from repro.sat.solver import SatSolver, _luby


def brute_force_sat(clauses, num_vars):
    for bits in range(1 << num_vars):
        if all(any(((bits >> (abs(l) - 1)) & 1) == (1 if l > 0 else 0)
                   for l in clause) for clause in clauses):
            return True
    return False


class TestBasics:
    def test_empty_formula_sat(self):
        assert SatSolver().solve()

    def test_unit_propagation(self):
        s = SatSolver()
        s.add_clause([1])
        s.add_clause([-1, 2])
        s.add_clause([-2, 3])
        assert s.solve()
        assert s.model_value(1) and s.model_value(2) and s.model_value(3)

    def test_trivial_unsat(self):
        s = SatSolver()
        s.add_clause([1])
        assert not s.add_clause([-1]) or not s.solve()
        assert not s.solve()

    def test_tautology_ignored(self):
        s = SatSolver()
        assert s.add_clause([1, -1])
        assert s.solve()

    def test_duplicate_literals_collapsed(self):
        s = SatSolver()
        s.add_clause([1, 1, 1])
        assert s.solve()
        assert s.model_value(1)

    def test_zero_literal_rejected(self):
        with pytest.raises(SatError):
            SatSolver().add_clause([0])

    def test_pigeonhole_2_into_1_unsat(self):
        # two pigeons, one hole
        s = SatSolver()
        s.add_clause([1])       # pigeon 1 in hole 1
        s.add_clause([2])       # pigeon 2 in hole 1
        s.add_clause([-1, -2])  # hole capacity
        assert not s.solve()


class TestAgainstBruteForce:
    def test_random_3sat(self):
        rng = random.Random(42)
        for _ in range(250):
            n = rng.randint(1, 8)
            m = rng.randint(1, 32)
            clauses = [[rng.choice([1, -1]) * rng.randint(1, n)
                        for _ in range(rng.randint(1, 3))] for _ in range(m)]
            solver = SatSolver()
            ok = True
            for clause in clauses:
                ok = solver.add_clause(clause) and ok
            got = solver.solve() if ok else False
            assert got == brute_force_sat(clauses, n), clauses
            if got:
                model = solver.model()
                for clause in clauses:
                    assert any(model[abs(l)] == (l > 0) for l in clause)


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = SatSolver()
        s.add_clause([-1, 2])
        assert s.solve((1,))
        assert s.model_value(2)

    def test_conflicting_assumptions(self):
        s = SatSolver()
        s.add_clause([1, 2])
        s.add_clause([-1, 3])
        assert not s.solve((-2, -3))

    def test_incremental_reuse(self):
        s = SatSolver()
        s.add_clause([1, 2, 3])
        assert s.solve((-1, -2))
        assert s.model_value(3)
        assert s.solve((-1, -3))
        assert s.model_value(2)
        assert not s.solve((-1, -2, -3))
        # plain solve still works afterwards
        assert s.solve()

    def test_assumption_of_fresh_variable(self):
        s = SatSolver()
        s.add_clause([1])
        assert s.solve((5,))
        assert s.model_value(5)


class TestInternals:
    def test_luby_sequence(self):
        assert [_luby(i) for i in range(9)] == [1, 1, 2, 1, 1, 2, 4, 1, 1]

    def test_statistics_grow(self):
        s = SatSolver()
        rng = random.Random(0)
        for _ in range(60):
            s.add_clause([rng.choice([1, -1]) * rng.randint(1, 12)
                          for _ in range(3)])
        s.solve()
        assert s.num_propagations > 0
