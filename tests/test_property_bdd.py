"""Property-based tests (hypothesis) for the BDD manager."""

from hypothesis import given
from hypothesis import strategies as st

from repro.bdd.manager import FALSE, BddManager
from repro.tt.truthtable import TruthTable, table_mask

from tests.test_bdd import build_from_table


def specs(max_vars=5):
    return st.integers(min_value=1, max_value=max_vars).flatmap(
        lambda n: st.tuples(
            st.integers(min_value=0, max_value=table_mask(n)),
            st.integers(min_value=0, max_value=table_mask(n)),
            st.just(n)))


@given(specs())
def test_boolean_algebra_laws(spec):
    bits1, bits2, n = spec
    mgr = BddManager(n)
    f = build_from_table(mgr, TruthTable(bits1, n))
    g = build_from_table(mgr, TruthTable(bits2, n))
    # De Morgan
    assert mgr.negate(mgr.apply_and(f, g)) == \
        mgr.apply_or(mgr.negate(f), mgr.negate(g))
    # absorption
    assert mgr.apply_or(f, mgr.apply_and(f, g)) == f
    # xor via and/or
    left = mgr.apply_xor(f, g)
    right = mgr.apply_or(mgr.apply_and(f, mgr.negate(g)),
                         mgr.apply_and(mgr.negate(f), g))
    assert left == right


@given(specs())
def test_canonicity_strong(spec):
    """Equal functions are the same node — the property the paper's MSPF
    engine exploits for cheap global queries."""
    bits1, bits2, n = spec
    mgr = BddManager(n)
    f = build_from_table(mgr, TruthTable(bits1, n))
    g = build_from_table(mgr, TruthTable(bits2, n))
    assert (f == g) == (bits1 == bits2)


@given(specs())
def test_ite_equals_mux_semantics(spec):
    bits1, bits2, n = spec
    mgr = BddManager(n)
    f = build_from_table(mgr, TruthTable(bits1, n))
    g = build_from_table(mgr, TruthTable(bits2, n))
    s = mgr.var(0)
    ite = mgr.ite(s, f, g)
    expect = (TruthTable.variable(0, n) & TruthTable(bits1, n)) | \
             (~TruthTable.variable(0, n) & TruthTable(bits2, n))
    assert mgr.to_truth_bits(ite, n) == expect.bits


@given(specs(max_vars=4))
def test_boolean_difference_via_bdds(spec):
    """∂f/∂g = f ⊕ g is 0 exactly when f and g are equivalent (Section III-A)."""
    bits1, bits2, n = spec
    mgr = BddManager(n)
    f = build_from_table(mgr, TruthTable(bits1, n))
    g = build_from_table(mgr, TruthTable(bits2, n))
    diff = mgr.apply_xor(f, g)
    assert (diff == FALSE) == (bits1 == bits2)
    # rebuilding f as diff ⊕ g is the identity of Section III-A
    assert mgr.apply_xor(diff, g) == f


@given(specs(max_vars=4))
def test_satcount_additivity(spec):
    bits1, bits2, n = spec
    mgr = BddManager(n)
    f = build_from_table(mgr, TruthTable(bits1, n))
    g = build_from_table(mgr, TruthTable(bits2, n))
    # inclusion-exclusion
    union = mgr.satcount(mgr.apply_or(f, g), n)
    inter = mgr.satcount(mgr.apply_and(f, g), n)
    assert union + inter == mgr.satcount(f, n) + mgr.satcount(g, n)


@given(specs(max_vars=4))
def test_cofactor_composition(spec):
    bits1, _b2, n = spec
    mgr = BddManager(n)
    t = TruthTable(bits1, n)
    f = build_from_table(mgr, t)
    for v in range(n):
        lo = mgr.cofactor(f, v, False)
        hi = mgr.cofactor(f, v, True)
        assert mgr.ite(mgr.var(v), hi, lo) == f
