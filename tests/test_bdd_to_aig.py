"""Tests for BDD ↔ AIG conversion (the strashing step of Alg. 1)."""

import random

from repro.aig.aig import Aig
from repro.aig.simulate import po_tables
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.to_aig import aig_window_to_bdds, bdd_of_literal, bdd_to_aig
from repro.tt.truthtable import TruthTable

from tests.test_bdd import build_from_table


def test_bdd_to_aig_function_preserved():
    rng = random.Random(0)
    for _ in range(40):
        n = rng.randint(1, 6)
        mgr = BddManager(n)
        t = TruthTable(rng.getrandbits(1 << n), n)
        root = build_from_table(mgr, t)
        aig = Aig()
        xs = aig.add_pis(n)
        out = bdd_to_aig(mgr, root, aig, xs)
        aig.add_po(out)
        assert po_tables(aig)[0] == t.bits


def test_bdd_to_aig_terminals():
    mgr = BddManager(1)
    aig = Aig()
    xs = aig.add_pis(1)
    assert bdd_to_aig(mgr, FALSE, aig, xs) == 0
    assert bdd_to_aig(mgr, TRUE, aig, xs) == 1


def test_bdd_to_aig_shares_with_known_nodes():
    """Seeding `known` implements the node reuse of Alg. 1 lines 5-7:
    the same BDD built twice with a seeded memo creates no new gates."""
    mgr = BddManager(3)
    f = mgr.apply_and(mgr.var(0), mgr.apply_or(mgr.var(1), mgr.var(2)))
    aig = Aig()
    xs = aig.add_pis(3)
    first = bdd_to_aig(mgr, f, aig, xs)
    size_after_first = aig.num_ands
    second = bdd_to_aig(mgr, f, aig, xs, known={f: first})
    assert second == first
    assert aig.num_ands == size_after_first


def test_window_to_bdds_matches_functions():
    from tests.conftest import make_random_aig
    aig = make_random_aig(5, 40, seed=3)
    mgr = BddManager(5)
    leaf_bdds = {p: mgr.var(i) for i, p in enumerate(aig.pis())}
    bdds = aig_window_to_bdds(aig, aig.topological_order(), leaf_bdds, mgr)
    from repro.aig.simulate import simulate_complete
    values = simulate_complete(aig)
    for node, bdd in bdds.items():
        if aig.is_and(node):
            assert mgr.to_truth_bits(bdd, 5) == values[node]


def test_window_to_bdds_bails_out_gracefully():
    from repro.aig.compose import multiplier
    aig = Aig()
    a = aig.add_pis(6)
    b = aig.add_pis(6)
    for p in multiplier(aig, a, b):
        aig.add_po(p)
    mgr = BddManager(12, node_limit=120)
    leaf_bdds = {p: mgr.var(i) for i, p in enumerate(aig.pis())}
    bdds = aig_window_to_bdds(aig, aig.topological_order(), leaf_bdds, mgr)
    # Some nodes bail out (absent), none raise
    assert len(bdds) < aig.num_ands + aig.num_pis + 1


def test_bdd_of_literal_phases():
    from tests.conftest import make_random_aig
    aig = make_random_aig(4, 20, seed=1)
    mgr = BddManager(4)
    leaf_bdds = {p: mgr.var(i) for i, p in enumerate(aig.pis())}
    bdds = aig_window_to_bdds(aig, aig.topological_order(), leaf_bdds, mgr)
    node = aig.topological_order()[-1]
    pos = bdd_of_literal(2 * node, bdds, mgr)
    neg = bdd_of_literal(2 * node + 1, bdds, mgr)
    assert neg == mgr.negate(pos)
    assert bdd_of_literal(2 * (aig.max_node + 0), {}, mgr) is None
