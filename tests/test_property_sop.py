"""Property-based tests (hypothesis) for the SOP algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sop.division import divide, divide_by_cube
from repro.sop.factor import factor, factored_to_aig
from repro.sop.kernels import is_cube_free, kernels, make_cube_free
from repro.sop.sop import Sop


def cube_strategy(nvars):
    return st.tuples(
        st.integers(min_value=0, max_value=(1 << nvars) - 1),
        st.integers(min_value=0, max_value=(1 << nvars) - 1),
    )


def sop_strategy(max_vars=5, max_cubes=6):
    return st.integers(min_value=1, max_value=max_vars).flatmap(
        lambda n: st.tuples(
            st.lists(cube_strategy(n), max_size=max_cubes),
            st.just(n)))


@given(sop_strategy())
def test_normal_form_no_containment(spec):
    cubes, n = spec
    sop = Sop(cubes)
    from repro.sop.cube import cube_contains, cube_is_contradiction
    for cube in sop.cubes:
        assert not cube_is_contradiction(cube)
    for i, a in enumerate(sop.cubes):
        for j, b in enumerate(sop.cubes):
            if i != j:
                assert not cube_contains(a, b)


@given(sop_strategy())
def test_union_is_function_or(spec):
    cubes, n = spec
    half = len(cubes) // 2
    f = Sop(cubes[:half])
    g = Sop(cubes[half:])
    assert (f | g).to_truth_bits(n) == (f.to_truth_bits(n) | g.to_truth_bits(n))


@given(sop_strategy())
def test_complement_is_exact(spec):
    cubes, n = spec
    sop = Sop(cubes)
    comp = sop.complement()
    assert comp is not None
    full = (1 << (1 << n)) - 1
    assert comp.to_truth_bits(n) == (sop.to_truth_bits(n) ^ full)


@given(sop_strategy())
def test_division_reconstruction(spec):
    cubes, n = spec
    if len(cubes) < 2:
        return
    f = Sop(cubes)
    d = Sop(cubes[:1])
    q, r = divide(f, d)
    recon = (q & d) | r
    assert recon.to_truth_bits(n) == f.to_truth_bits(n)


@given(sop_strategy())
def test_make_cube_free_reconstruction(spec):
    cubes, n = spec
    sop = Sop(cubes)
    free, common = make_cube_free(sop)
    assert free.and_cube(common).to_truth_bits(n) == sop.to_truth_bits(n)
    if sop.cubes:
        assert is_cube_free(free)


@given(sop_strategy(max_vars=4, max_cubes=5))
def test_kernels_divide_evenly(spec):
    """Every kernel's co-kernel divides the cover with that kernel inside
    the quotient's cube-free part."""
    cubes, n = spec
    sop = Sop(cubes)
    for kernel, cokernel in kernels(sop, max_kernels=20):
        quotient, _r = divide_by_cube(sop, cokernel)
        free, _c = make_cube_free(quotient)
        # the kernel is exactly the cube-free quotient at this co-kernel
        # (for level-0 kernels) or one of its kernels; weak check: all
        # kernel cubes appear in the quotient's cube-free part closure
        assert kernel.num_cubes() <= quotient.num_cubes()


@given(sop_strategy())
def test_factor_preserves_function(spec):
    from repro.aig.aig import Aig
    from repro.aig.simulate import po_tables
    cubes, n = spec
    sop = Sop(cubes)
    aig = Aig()
    xs = aig.add_pis(n)
    aig.add_po(factored_to_aig(factor(sop), aig, xs))
    assert po_tables(aig)[0] == sop.to_truth_bits(n)
