"""Tests for bit-parallel AIG simulation."""

import random

import pytest

from repro.aig.aig import Aig, lit_not
from repro.aig.simulate import (
    functional_fingerprints,
    po_tables,
    po_words,
    random_words,
    simulate_complete,
    simulate_words,
)
from repro.errors import AigError


def test_simulate_words_basic_gates():
    aig = Aig()
    a, b = aig.add_pis(2)
    f_and = aig.add_and(a, b)
    f_or = aig.add_or(a, b)
    f_xor = aig.add_xor(a, b)
    aig.add_po(f_and)
    aig.add_po(f_or)
    aig.add_po(f_xor)
    wa, wb = 0b1100, 0b1010
    outs = po_words(aig, simulate_words(aig, [wa, wb]))
    assert outs[0] & 0xF == wa & wb
    assert outs[1] & 0xF == wa | wb
    assert outs[2] & 0xF == wa ^ wb


def test_simulate_words_wrong_arity():
    aig = Aig()
    aig.add_pis(3)
    with pytest.raises(AigError):
        simulate_words(aig, [1, 2])


def test_complemented_po_word():
    aig = Aig()
    a = aig.add_pi()
    aig.add_po(lit_not(a))
    out = po_words(aig, simulate_words(aig, [0b0110]))[0]
    assert out & 0xF == 0b1001


def test_simulate_complete_matches_word_simulation():
    rng = random.Random(3)
    from tests.conftest import make_random_aig
    aig = make_random_aig(5, 40, seed=9)
    tables = po_tables(aig)
    # Check every row against single-pattern word simulation
    for row in range(32):
        words = [(0xFFFFFFFFFFFFFFFF if (row >> i) & 1 else 0)
                 for i in range(5)]
        outs = po_words(aig, simulate_words(aig, words))
        for table, word in zip(tables, outs):
            assert ((table >> row) & 1) == (word & 1)


def test_simulate_complete_too_many_inputs():
    aig = Aig()
    aig.add_pis(25)
    with pytest.raises(AigError):
        simulate_complete(aig)


def test_fingerprints_distinguish_inequivalent_nodes():
    aig = Aig()
    a, b = aig.add_pis(2)
    f = aig.add_and(a, b)
    g = aig.add_or(a, b)
    aig.add_po(f)
    aig.add_po(g)
    prints = functional_fingerprints(aig)
    assert prints[f >> 1] != prints[g >> 1]


def test_fingerprints_equal_for_identical_structure():
    aig = Aig()
    a, b = aig.add_pis(2)
    f = aig.add_and(a, b)
    aig.add_po(f)
    prints = functional_fingerprints(aig, num_words=2)
    assert prints[f >> 1] == prints[f >> 1]


def test_random_words_deterministic():
    assert random_words(4) == random_words(4)


def test_dangling_nodes_also_simulated():
    aig = Aig()
    a, b = aig.add_pis(2)
    used = aig.add_and(a, b)
    dangling = aig.add_and(a, lit_not(b))
    aig.add_po(used)
    values = simulate_words(aig, [0b1100, 0b1010])
    assert (dangling >> 1) in values
