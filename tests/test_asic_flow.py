"""Tests for the industrial-design generators and the two full flows."""

from repro.asic.designs import generate_design, industrial_designs
from repro.asic.flow import baseline_flow, proposed_flow


def test_designs_deterministic():
    from repro.aig.io_aiger import write_aag_string
    assert write_aag_string(generate_design(5)) == \
        write_aag_string(generate_design(5))


def test_designs_distinct():
    sizes = {generate_design(i).num_ands for i in range(6)}
    assert len(sizes) >= 4


def test_design_profiles():
    for i in range(4):
        aig = generate_design(i)
        assert aig.num_pis >= 24
        assert aig.num_pos >= 9
        assert aig.num_ands > 20


def test_industrial_suite_clock_targets():
    designs = industrial_designs(count=2)
    for d in designs:
        assert d.clock_period > 0


def test_baseline_flow_produces_metrics():
    aig = generate_design(0)
    result = baseline_flow(aig, clock_period=10.0)
    assert result.combinational_area > 0
    assert result.dynamic_power > 0
    assert result.gates > 0
    assert result.verified
    assert result.runtime_s > 0


def test_proposed_flow_verified_and_not_larger():
    from repro.sbm.config import FlowConfig
    aig = generate_design(1)
    base = baseline_flow(aig, clock_period=10.0)
    prop = proposed_flow(aig, clock_period=10.0,
                         sbm_config=FlowConfig(iterations=1))
    assert prop.verified
    assert prop.combinational_area <= base.combinational_area * 1.05


def test_flow_keep_netlist():
    aig = generate_design(0)
    result = baseline_flow(aig, clock_period=10.0, keep_netlist=True)
    assert result.netlist is not None
    assert len(result.netlist.gates) == result.gates
