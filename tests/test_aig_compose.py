"""Exhaustive functional tests of the word-level circuit builders."""

import math

import pytest

from repro.aig.aig import Aig
from repro.aig.compose import (
    barrel_shifter,
    constant_word,
    decoder,
    divider,
    equal,
    full_adder,
    hypotenuse,
    isqrt,
    less_than,
    max_word,
    multiplier,
    mux_word,
    onehot_mux,
    popcount,
    ripple_adder,
    square,
    subtractor,
)
from repro.aig.simulate import po_tables


def _eval_outputs(aig, tables, start, width, row):
    return sum(((tables[start + i] >> row) & 1) << i for i in range(width))


def _exhaustive(aig, widths):
    tables = po_tables(aig)
    return tables


class TestAdders:
    def test_full_adder_exhaustive(self):
        aig = Aig()
        a, b, c = aig.add_pis(3)
        s, cout = full_adder(aig, a, b, c)
        aig.add_po(s)
        aig.add_po(cout)
        tables = po_tables(aig)
        for row in range(8):
            bits = bin(row).count("1")
            assert (tables[0] >> row) & 1 == bits % 2
            assert (tables[1] >> row) & 1 == (bits >= 2)

    def test_ripple_adder_exhaustive(self):
        aig = Aig()
        a = aig.add_pis(3)
        b = aig.add_pis(3)
        total, carry = ripple_adder(aig, a, b)
        for s in total + [carry]:
            aig.add_po(s)
        tables = po_tables(aig)
        for av in range(8):
            for bv in range(8):
                row = av | (bv << 3)
                got = _eval_outputs(aig, tables, 0, 4, row)
                assert got == av + bv

    def test_subtractor_and_less_than(self):
        aig = Aig()
        a = aig.add_pis(3)
        b = aig.add_pis(3)
        diff, borrow = subtractor(aig, a, b)
        for d in diff:
            aig.add_po(d)
        aig.add_po(borrow)
        tables = po_tables(aig)
        for av in range(8):
            for bv in range(8):
                row = av | (bv << 3)
                got = _eval_outputs(aig, tables, 0, 3, row)
                assert got == (av - bv) % 8
                assert (tables[3] >> row) & 1 == (av < bv)


class TestMultiplyDivide:
    def test_multiplier_exhaustive(self):
        aig = Aig()
        a = aig.add_pis(3)
        b = aig.add_pis(3)
        for p in multiplier(aig, a, b):
            aig.add_po(p)
        tables = po_tables(aig)
        for av in range(8):
            for bv in range(8):
                row = av | (bv << 3)
                assert _eval_outputs(aig, tables, 0, 6, row) == av * bv

    def test_square_matches_multiplier(self):
        aig = Aig()
        a = aig.add_pis(3)
        for s in square(aig, a):
            aig.add_po(s)
        tables = po_tables(aig)
        for av in range(8):
            assert _eval_outputs(aig, tables, 0, 6, av) == av * av

    def test_divider_exhaustive(self):
        aig = Aig()
        n = aig.add_pis(3)
        d = aig.add_pis(3)
        q, r = divider(aig, n, d)
        for x in q + r:
            aig.add_po(x)
        tables = po_tables(aig)
        for nv in range(8):
            for dv in range(1, 8):
                row = nv | (dv << 3)
                assert _eval_outputs(aig, tables, 0, 3, row) == nv // dv
                assert _eval_outputs(aig, tables, 3, 3, row) == nv % dv

    def test_isqrt_exhaustive(self):
        aig = Aig()
        x = aig.add_pis(6)
        roots = isqrt(aig, x)
        for r in roots:
            aig.add_po(r)
        tables = po_tables(aig)
        for v in range(64):
            assert _eval_outputs(aig, tables, 0, len(roots), v) == math.isqrt(v)

    def test_hypotenuse_samples(self):
        aig = Aig()
        a = aig.add_pis(3)
        b = aig.add_pis(3)
        h = hypotenuse(aig, a, b)
        for x in h:
            aig.add_po(x)
        tables = po_tables(aig)
        for av in range(8):
            for bv in range(8):
                row = av | (bv << 3)
                got = _eval_outputs(aig, tables, 0, len(h), row)
                assert got == math.isqrt(av * av + bv * bv)


class TestSelectorsAndMisc:
    def test_mux_word_and_max(self):
        aig = Aig()
        a = aig.add_pis(3)
        b = aig.add_pis(3)
        m = max_word(aig, a, b)
        for x in m:
            aig.add_po(x)
        tables = po_tables(aig)
        for av in range(8):
            for bv in range(8):
                row = av | (bv << 3)
                assert _eval_outputs(aig, tables, 0, 3, row) == max(av, bv)

    def test_equal(self):
        aig = Aig()
        a = aig.add_pis(3)
        b = aig.add_pis(3)
        aig.add_po(equal(aig, a, b))
        tables = po_tables(aig)
        for av in range(8):
            for bv in range(8):
                row = av | (bv << 3)
                assert (tables[0] >> row) & 1 == (av == bv)

    def test_barrel_shifter_rotates(self):
        aig = Aig()
        data = aig.add_pis(4)
        shift = aig.add_pis(2)
        for o in barrel_shifter(aig, data, shift):
            aig.add_po(o)
        tables = po_tables(aig)
        for dv in range(16):
            for sv in range(4):
                row = dv | (sv << 4)
                got = _eval_outputs(aig, tables, 0, 4, row)
                expect = ((dv << sv) | (dv >> (4 - sv))) & 0xF if sv else dv
                assert got == expect

    def test_popcount(self):
        aig = Aig()
        bits = aig.add_pis(5)
        count = popcount(aig, bits)
        for c in count:
            aig.add_po(c)
        tables = po_tables(aig)
        for v in range(32):
            assert _eval_outputs(aig, tables, 0, len(count), v) == bin(v).count("1")

    def test_decoder_onehot(self):
        aig = Aig()
        sel = aig.add_pis(2)
        outs = decoder(aig, sel)
        for o in outs:
            aig.add_po(o)
        tables = po_tables(aig)
        for sv in range(4):
            for i in range(4):
                assert (tables[i] >> sv) & 1 == (i == sv)

    def test_onehot_mux(self):
        aig = Aig()
        selects = aig.add_pis(2)
        data = aig.add_pis(2)
        aig.add_po(onehot_mux(aig, selects, data))
        tables = po_tables(aig)
        for row in range(16):
            s = [(row >> i) & 1 for i in range(2)]
            d = [(row >> (2 + i)) & 1 for i in range(2)]
            expect = (s[0] and d[0]) or (s[1] and d[1])
            assert (tables[0] >> row) & 1 == expect

    def test_constant_word(self):
        assert constant_word(5, 4) == [1, 0, 1, 0]
        assert constant_word(0, 3) == [0, 0, 0]

    def test_width_mismatch_raises(self):
        from repro.errors import AigError
        aig = Aig()
        a = aig.add_pis(3)
        b = aig.add_pis(2)
        with pytest.raises(AigError):
            ripple_adder(aig, a, b)
        with pytest.raises(AigError):
            mux_word(aig, a[0], a, b)
