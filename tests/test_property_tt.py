"""Property-based tests (hypothesis) for truth tables, ISOP, and NPN."""

from hypothesis import given
from hypothesis import strategies as st

from repro.tt.isop import cover_table, isop, isop_table
from repro.tt.npn import apply_transform, invert_transform, npn_canonical, npn_semicanonical
from repro.tt.truthtable import TruthTable, table_mask


def tables(max_vars=5):
    return st.integers(min_value=1, max_value=max_vars).flatmap(
        lambda n: st.tuples(st.integers(min_value=0,
                                        max_value=table_mask(n)),
                            st.just(n)))


@given(tables())
def test_double_complement_is_identity(spec):
    bits, n = spec
    t = TruthTable(bits, n)
    assert ~~t == t


@given(tables())
def test_shannon_expansion(spec):
    """f = x·f_x + !x·f_!x for every variable."""
    bits, n = spec
    t = TruthTable(bits, n)
    for v in range(n):
        x = TruthTable.variable(v, n)
        recon = (x & t.cofactor(v, True)) | (~x & t.cofactor(v, False))
        assert recon == t


@given(tables())
def test_quantifier_ordering(spec):
    """forall(f) ⊆ f ⊆ exists(f)."""
    bits, n = spec
    t = TruthTable(bits, n)
    for v in range(n):
        assert (t.forall(v).bits & ~t.bits) == 0
        assert (t.bits & ~t.exists(v).bits) == 0


@given(tables())
def test_boolean_difference_symmetric_in_cofactors(spec):
    bits, n = spec
    t = TruthTable(bits, n)
    for v in range(n):
        diff = t.boolean_difference(v)
        assert diff == (t.cofactor(v, True) ^ t.cofactor(v, False))
        # f does not depend on v iff the difference is empty
        assert diff.is_const0() == (not t.depends_on(v))


@given(tables())
def test_isop_covers_exactly(spec):
    bits, n = spec
    t = TruthTable(bits, n)
    assert cover_table(isop_table(t), n) == t.bits


@given(tables(max_vars=4), st.integers(min_value=0))
def test_isop_interval_respected(spec, dc_seed):
    bits, n = spec
    dc = dc_seed % (table_mask(n) + 1)
    lower = TruthTable(bits & ~dc, n)
    upper = TruthTable(bits | dc, n)
    cover = cover_table(isop(lower, upper), n)
    assert lower.bits & ~cover == 0
    assert cover & ~upper.bits & table_mask(n) == 0


@given(tables(max_vars=4))
def test_npn_canonical_round_trip(spec):
    bits, n = spec
    t = TruthTable(bits, n)
    canon, transform = npn_canonical(t)
    assert apply_transform(t, transform) == canon
    inverse = invert_transform(transform, n)
    assert apply_transform(canon, inverse) == t


@given(tables(max_vars=5))
def test_semicanonical_round_trip(spec):
    bits, n = spec
    t = TruthTable(bits, n)
    semi, transform = npn_semicanonical(t)
    assert apply_transform(t, transform) == semi
    assert (semi.bits & 1) == 0


@given(tables(max_vars=4))
def test_swap_is_involution(spec):
    bits, n = spec
    t = TruthTable(bits, n)
    if n >= 2:
        assert t.swap_variables(0, n - 1).swap_variables(0, n - 1) == t


@given(tables(max_vars=4))
def test_shrink_expand_round_trip(spec):
    bits, n = spec
    t = TruthTable(bits, n)
    small, support = t.shrink_to_support()
    # re-expanding over the support positions reproduces t
    if support == list(range(len(support))):
        assert small.expand(n) == t or t.support() == support
