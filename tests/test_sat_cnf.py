"""Tests for Tseitin encoding, miters, and equivalence checking."""

import pytest

from repro.aig.aig import Aig, lit_not
from repro.sat.cnf import AigCnf, build_miter, prove_equivalent
from repro.sat.equivalence import assert_equivalent, check_equivalence


class TestAigCnf:
    def test_prove_equal_structures(self):
        aig = Aig()
        a, b, c = aig.add_pis(3)
        f = aig.add_and(aig.add_and(a, b), c)
        g = aig.add_and(a, aig.add_and(b, c))
        cnf = AigCnf(aig)
        eq, cex = prove_equivalent(cnf, f, g)
        assert eq and cex is None

    def test_refute_with_counterexample(self):
        aig = Aig()
        a, b = aig.add_pis(2)
        f = aig.add_and(a, b)
        g = aig.add_or(a, b)
        cnf = AigCnf(aig)
        eq, cex = prove_equivalent(cnf, f, g)
        assert not eq
        # cex must distinguish AND from OR: exactly one input true
        assert sum(cex) == 1

    def test_complemented_literals(self):
        aig = Aig()
        a, b = aig.add_pis(2)
        f = aig.add_and(a, b)
        nand = lit_not(f)
        cnf = AigCnf(aig)
        eq, _ = prove_equivalent(cnf, nand, lit_not(f))
        assert eq
        eq, _ = prove_equivalent(cnf, nand, f)
        assert not eq

    def test_constants(self):
        aig = Aig()
        a = aig.add_pi()
        cnf = AigCnf(aig)
        eq, _ = prove_equivalent(cnf, aig.add_and(a, lit_not(a)), 0)
        assert eq

    def test_lazy_encoding(self):
        aig = Aig()
        a, b, c, d = aig.add_pis(4)
        small = aig.add_and(a, b)
        aig.add_and(aig.add_and(a, b), aig.add_and(c, d))
        cnf = AigCnf(aig)
        cnf.sat_literal(small)
        # Only the 2-input cone is encoded: <= 3 vars + const
        assert cnf.solver.num_vars <= 4


class TestMiter:
    def test_miter_unsat_for_equivalent(self, small_adder):
        clone = small_adder.cleanup()
        miter = build_miter(small_adder, clone)
        cnf = AigCnf(miter)
        out = cnf.sat_literal(miter.pos()[0])
        assert not cnf.solver.solve((out,))

    def test_miter_sat_for_different(self, small_adder):
        other = Aig()
        pis = other.add_pis(small_adder.num_pis)
        for i in range(small_adder.num_pos):
            other.add_po(pis[i % len(pis)])
        miter = build_miter(small_adder, other)
        cnf = AigCnf(miter)
        out = cnf.sat_literal(miter.pos()[0])
        assert cnf.solver.solve((out,))

    def test_miter_interface_mismatch(self, small_adder):
        other = Aig()
        other.add_pi()
        other.add_po(2)
        with pytest.raises(ValueError):
            build_miter(small_adder, other)


class TestCheckEquivalence:
    def test_exhaustive_path(self, small_mult):
        assert check_equivalence(small_mult, small_mult.cleanup())[0]

    def test_sat_path_large_inputs(self):
        a1 = Aig()
        xs = a1.add_pis(20)
        a1.add_po(a1.add_and_multi(xs))
        a2 = Aig()
        xs = a2.add_pis(20)
        acc = 1
        for x in xs:
            acc = a2.add_and(acc, x)
        a2.add_po(acc)
        ok, _ = check_equivalence(a1, a2)
        assert ok

    def test_counterexample_is_real(self, small_adder):
        from repro.aig.simulate import po_words, simulate_words
        broken = small_adder.cleanup()
        # flip one PO's phase
        broken.set_po(0, lit_not(broken.pos()[0]))
        ok, cex = check_equivalence(small_adder, broken)
        assert not ok and cex is not None
        words_a = [(1 << 64) - 1 if v else 0 for v in cex]
        out_a = po_words(small_adder, simulate_words(small_adder, words_a))
        out_b = po_words(broken, simulate_words(broken, words_a))
        assert any((x ^ y) & 1 for x, y in zip(out_a, out_b))

    def test_assert_equivalent_raises(self, small_adder):
        broken = small_adder.cleanup()
        broken.set_po(0, lit_not(broken.pos()[0]))
        with pytest.raises(AssertionError):
            assert_equivalent(small_adder, broken)
