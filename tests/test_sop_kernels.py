"""Tests for kernel computation and factoring."""

import random

from repro.aig.aig import Aig
from repro.aig.simulate import po_tables
from repro.sop.factor import (
    factor,
    factored_literal_count,
    factored_pretty,
    factored_to_aig,
    sop_to_aig,
)
from repro.sop.kernels import (
    best_kernel,
    is_cube_free,
    kernel_value,
    kernels,
    make_cube_free,
)
from repro.sop.sop import Sop

from tests.test_sop_algebra import random_sop


class TestKernels:
    def test_textbook_kernels(self):
        # F = ace + bce + de + g (classic example): kernels include
        # {a+b, ac+bc ... }; co-kernel ce yields kernel a+b
        a, b, c, d, e, g = (1 << i for i in range(6))
        f = Sop([(a | c | e, 0), (b | c | e, 0), (d | e, 0), (g, 0)])
        ks = kernels(f)
        kernel_sets = [sorted(k.cubes) for k, _ck in ks]
        assert sorted([(a, 0), (b, 0)]) in kernel_sets
        # the cover itself is cube-free, so it is its own level-n kernel
        assert sorted(f.cubes) in kernel_sets

    def test_kernels_are_cube_free(self):
        rng = random.Random(0)
        for _ in range(40):
            n = rng.randint(2, 6)
            f = random_sop(rng, n, rng.randint(2, 8))
            for k, _ck in kernels(f):
                assert is_cube_free(k)

    def test_make_cube_free(self):
        a, b, c = (1 << i for i in range(3))
        f = Sop([(a | b, 0), (a | c, 0)])
        free, common = make_cube_free(f)
        assert common == (a, 0)
        assert sorted(free.cubes) == [(b, 0), (c, 0)]

    def test_single_cube_no_kernels(self):
        f = Sop([(0b111, 0)])
        assert kernels(f) == []

    def test_kernel_value_counts_sharing(self):
        a, b, c, d = (1 << i for i in range(4))
        # two nodes sharing divisor (a + b)
        n1 = Sop([(a | c, 0), (b | c, 0)])
        n2 = Sop([(a | d, 0), (b | d, 0)])
        kernel = Sop([(a, 0), (b, 0)])
        assert kernel_value([n1, n2], kernel) > 0

    def test_best_kernel_finds_shared_divisor(self):
        a, b, c, d = (1 << i for i in range(4))
        n1 = Sop([(a | c, 0), (b | c, 0)])
        n2 = Sop([(a | d, 0), (b | d, 0)])
        found = best_kernel([n1, n2])
        assert found is not None
        kernel, value = found
        assert sorted(kernel.cubes) == [(a, 0), (b, 0)]
        assert value > 0

    def test_best_kernel_none_when_nothing_shared(self):
        f = Sop([(0b1, 0)])
        assert best_kernel([f]) is None


class TestFactoring:
    def test_factor_preserves_function(self):
        rng = random.Random(1)
        for _ in range(80):
            n = rng.randint(1, 6)
            f = random_sop(rng, n, rng.randint(0, 7))
            aig = Aig()
            xs = aig.add_pis(n)
            out = factored_to_aig(factor(f), aig, xs)
            aig.add_po(out)
            assert po_tables(aig)[0] == f.to_truth_bits(n)

    def test_factor_reduces_literals(self):
        # F = ac + ad + bc + bd: flat 8 literals, factored (a+b)(c+d) = 4
        a, b, c, d = (1 << i for i in range(4))
        f = Sop([(a | c, 0), (a | d, 0), (b | c, 0), (b | d, 0)])
        form = factor(f)
        assert factored_literal_count(form) <= 5

    def test_factor_constants(self):
        assert factor(Sop.constant(False)) == ("const", False)
        assert factor(Sop.constant(True)) == ("const", True)

    def test_factored_pretty(self):
        a, b, c = (1 << i for i in range(3))
        f = Sop([(a | b, 0), (a | c, 0)])
        text = factored_pretty(factor(f), ["a", "b", "c"])
        assert "a" in text and "+" in text

    def test_sop_to_aig(self):
        rng = random.Random(2)
        for _ in range(30):
            n = rng.randint(1, 5)
            f = random_sop(rng, n, rng.randint(0, 5))
            aig = Aig()
            xs = aig.add_pis(n)
            aig.add_po(sop_to_aig(f, aig, xs))
            assert po_tables(aig)[0] == f.to_truth_bits(n)
