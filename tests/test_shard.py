"""Tests for the campaign fleet: shard planning and cache pack/merge.

The contracts under test:

* **Plan determinism** — a shard plan is a pure function of (jobs, N,
  costs): identical across processes and ``PYTHONHASHSEED`` values, so
  N uncoordinated CI workers derive the same disjoint partition.
* **Disjoint cover** — every job lands on exactly one shard, for every
  N and for both planners; same-token jobs land together (the dedup
  pass must behave exactly as in an unsharded run).
* **Pack/merge round trip** — packing a cache and merging the archive
  reproduces the entries byte for byte; packing is itself
  byte-reproducible; re-merging is an idempotent no-op.
* **Conflict detection** — same key with a different payload is a hard
  :class:`CacheMergeConflict`, never a silent winner; same key with
  only different ``stats`` timings is an accepted duplicate.
* **Counter propagation** — per-slot ``store_failures`` recorded by a
  shard travel through the pack manifest into the merge report.
* **Fleet == single worker** — on real EPFL benchmarks, N merged
  shards produce a cache and report identical to one worker's, and a
  warm cross-shard rerun is all hits, bit-identical.
"""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
import sys

import pytest

from repro.campaign import (
    CampaignJob,
    ResultCache,
    cache_inventory,
    flow_cache_key,
    jobs_from_benchmarks,
    merge_cache,
    pack_cache,
    plan_shards,
    run_campaign,
    shard_token,
)
from repro.campaign.shard import ShardSpec, shard_costs_from_history
from repro.campaign.sync import CacheMergeConflict, entry_payload_digest
from repro.parallel.window_io import CompactAig
from repro.sbm.config import FlowConfig

from tests.conftest import make_random_aig


def structure(aig):
    """Canonical structural tuple for bit-identity comparison."""
    compact = CompactAig.from_aig(aig)
    return compact.num_pis, tuple(compact.gates), tuple(compact.outputs)


def random_jobs(n=6, seed=100):
    """Small-network jobs (no registry lookups, fast to key)."""
    return [CampaignJob(name=f"job{i}", benchmark=f"job{i}",
                        config=FlowConfig(iterations=1),
                        network=make_random_aig(6, 24, seed=seed + i))
            for i in range(n)]


# -- shard specs and plans ----------------------------------------------------

class TestShardSpec:
    def test_parse(self):
        spec = ShardSpec.parse("1/3")
        assert (spec.index, spec.count, spec.label) == (1, 3, "1/3")

    @pytest.mark.parametrize("text", ["", "2", "a/b", "1/2/3", "3/3",
                                      "-1/3", "0/0"])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            ShardSpec.parse(text)


class TestPlanDeterminism:
    def test_stable_across_hashseed_processes(self):
        jobs = jobs_from_benchmarks(["router", "i2c", "cavlc", "priority"],
                                    config=FlowConfig(iterations=1))
        here = plan_shards(jobs, 3).assignments
        code = (
            "from repro.campaign import jobs_from_benchmarks, plan_shards\n"
            "from repro.sbm.config import FlowConfig\n"
            "jobs = jobs_from_benchmarks(['router', 'i2c', 'cavlc',"
            " 'priority'], config=FlowConfig(iterations=1))\n"
            "print(plan_shards(jobs, 3).assignments)\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        env["PYTHONHASHSEED"] = "54321"  # plans must not depend on hashing
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == str(here)

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8])
    def test_disjoint_cover_hash(self, count):
        jobs = random_jobs(7)
        plan = plan_shards(jobs, count)
        covered = sorted(p for i in range(count)
                         for p in plan.positions(i))
        assert covered == list(range(len(jobs)))

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8])
    def test_disjoint_cover_cost(self, count):
        jobs = random_jobs(7)
        costs = {job.benchmark: float(i + 1)
                 for i, job in enumerate(jobs)}
        plan = plan_shards(jobs, count, costs=costs)
        assert plan.planner == "cost"
        covered = sorted(p for i in range(count)
                         for p in plan.positions(i))
        assert covered == list(range(len(jobs)))

    def test_same_token_jobs_stay_together(self):
        # Two jobs over the same network+config share a cache key; dedup
        # only works inside one campaign, so they must share a shard.
        aig = make_random_aig(6, 24, seed=7)
        config = FlowConfig(iterations=1)
        jobs = [CampaignJob(name="a", benchmark="a", config=config,
                            network=aig),
                CampaignJob(name="b", benchmark="b", config=config,
                            network=aig)] + random_jobs(4)
        assert shard_token(jobs[0]) == shard_token(jobs[1])
        for costs in (None, {"a": 5.0, "b": 1.0}):
            plan = plan_shards(jobs, 3, costs=costs)
            assert plan.assignments[0] == plan.assignments[1]

    def test_cost_plan_balances_loads(self):
        jobs = random_jobs(6)
        costs = {job.benchmark: cost
                 for job, cost in zip(jobs, [8.0, 1.0, 1.0, 1.0, 1.0, 4.0])}
        plan = plan_shards(jobs, 2, costs=costs)
        loads = plan.loads()
        assert sum(loads) == pytest.approx(16.0)
        # LPT puts the 8.0 job alone against 4+1+1+1+1.
        assert sorted(loads) == [8.0, 8.0]
        assert plan_shards(jobs, 2, costs=costs).assignments \
            == plan.assignments  # pure function

    def test_select_and_tag(self):
        jobs = random_jobs(5)
        plan = plan_shards(jobs, 2)
        selected = plan.select(jobs, 0)
        assert [j.name for j in selected] \
            == [plan.names[p] for p in plan.positions(0)]
        tag = plan.tag(0)
        assert tag["count"] == 2 and tag["total_jobs"] == 5
        assert tag["jobs"] == [j.name for j in selected]
        with pytest.raises(ValueError):
            plan.select(jobs[:-1], 0)

    def test_uncacheable_jobs_get_fallback_tokens(self):
        config = FlowConfig(iterations=1)
        jobs = [CampaignJob(name="bad", benchmark="no-such-benchmark",
                            config=config)]
        token = shard_token(jobs[0])
        assert token == shard_token(jobs[0])  # deterministic fallback
        plan = plan_shards(jobs, 4)
        assert sorted(p for i in range(4) for p in plan.positions(i)) == [0]


class TestShardCostsFromHistory:
    def test_missing_db_is_empty(self, tmp_path):
        assert shard_costs_from_history(str(tmp_path / "none.db")) == {}

    def test_median_of_cold_runtimes(self, tmp_path):
        db = str(tmp_path / "t.db")
        conn = sqlite3.connect(db)
        conn.executescript(
            "CREATE TABLE runs (run_id INTEGER PRIMARY KEY);"
            "CREATE TABLE jobs (run_id INT, benchmark TEXT, outcome TEXT,"
            " flow_runtime_s REAL);")
        conn.execute("INSERT INTO runs (run_id) VALUES (1), (2)")
        rows = [(1, "router", "miss", 2.0), (2, "router", "miss", 4.0),
                (1, "router", "miss", 9.0), (1, "i2c", "uncached", 5.0),
                (2, "i2c", "hit", 99.0)]  # hits replay cold stats: ignored
        conn.executemany("INSERT INTO jobs VALUES (?, ?, ?, ?)", rows)
        conn.commit()
        conn.close()
        assert shard_costs_from_history(db) == {"router": 4.0, "i2c": 5.0}


# -- pack / merge -------------------------------------------------------------

def seed_cache(root, n=3, seed=500):
    """A cache directory with *n* flow entries and one stage entry."""
    cache = ResultCache(root)
    for i in range(n):
        aig = make_random_aig(6, 20, seed=seed + i)
        key = flow_cache_key(aig, FlowConfig(iterations=1))
        cache.store(key, aig, {"runtime_s": 0.5 + i}, aig.num_ands)
    stage_aig = make_random_aig(6, 20, seed=seed + n)
    cache.store_stage("ab" + "0" * 62, stage_aig, {"elapsed_s": 0.25})
    return cache


def read_tree(root):
    """{relpath: bytes} of every file under *root*."""
    tree = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                tree[os.path.relpath(path, root)] = handle.read()
    return tree


class TestPackMerge:
    def test_round_trip_byte_identity(self, tmp_path):
        src = str(tmp_path / "src")
        seed_cache(src)
        archive = str(tmp_path / "pack.tar.gz")
        manifest = pack_cache(src, archive)
        assert len(manifest["entries"]) == 4
        assert manifest["corrupt_skipped"] == 0
        dest = str(tmp_path / "dest")
        report = merge_cache([archive], dest)
        assert report.imported == 4 and report.duplicates == 0
        assert report.imported_by_slot == {"flow": 3, "stage": 1}
        assert read_tree(dest) == read_tree(src)
        assert cache_inventory(dest) == cache_inventory(src)

    def test_pack_is_byte_reproducible(self, tmp_path):
        src = str(tmp_path / "src")
        seed_cache(src)
        a, b = str(tmp_path / "a.tar.gz"), str(tmp_path / "b.tar.gz")
        pack_cache(src, a)
        pack_cache(src, b)
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_double_merge_is_idempotent(self, tmp_path):
        src = str(tmp_path / "src")
        seed_cache(src)
        archive = str(tmp_path / "pack.tar.gz")
        pack_cache(src, archive)
        dest = str(tmp_path / "dest")
        merge_cache([archive], dest)
        before = read_tree(dest)
        again = merge_cache([archive], dest)
        assert again.imported == 0 and again.duplicates == 4
        assert read_tree(dest) == before

    def test_conflict_is_a_hard_error(self, tmp_path):
        src = str(tmp_path / "src")
        seed_cache(src)
        # Forge a second cache holding the same key with a different
        # result payload — the broken-determinism scenario.
        entries = [rel for rel, _raw in read_tree(src).items()
                   if "stage" not in rel]
        victim = os.path.join(src, entries[0])
        with open(victim, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        evil = str(tmp_path / "evil")
        os.makedirs(os.path.join(evil, os.path.dirname(entries[0])))
        doc["nodes_after"] = doc.get("nodes_after", 0) + 1
        with open(os.path.join(evil, entries[0]), "w",
                  encoding="utf-8") as handle:
            json.dump(doc, handle)
        good = str(tmp_path / "good.tar.gz")
        bad = str(tmp_path / "bad.tar.gz")
        pack_cache(src, good)
        pack_cache(evil, bad)
        dest = str(tmp_path / "dest")
        merge_cache([good], dest)
        with pytest.raises(CacheMergeConflict, match="different result"):
            merge_cache([bad], dest)

    def test_timing_only_difference_is_a_duplicate(self, tmp_path):
        # Same payload, different stats: two workers computed the same
        # key at different speeds.  Must merge as a duplicate, not a
        # conflict — wall time is measurement, not result.
        src = str(tmp_path / "src")
        seed_cache(src)
        twin = str(tmp_path / "twin")
        for rel, raw in read_tree(src).items():
            doc = json.loads(raw)
            doc["stats"] = {"runtime_s": 123.0}
            path = os.path.join(twin, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(doc, handle)
            assert entry_payload_digest(raw) \
                == entry_payload_digest(json.dumps(doc).encode())
        a, b = str(tmp_path / "a.tar.gz"), str(tmp_path / "b.tar.gz")
        pack_cache(src, a)
        pack_cache(twin, b)
        dest = str(tmp_path / "dest")
        report = merge_cache([a, b], dest)
        assert report.imported == 4 and report.duplicates == 4
        assert cache_inventory(dest) == cache_inventory(src)

    def test_corrupt_entry_counted_not_shipped(self, tmp_path):
        src = str(tmp_path / "src")
        seed_cache(src)
        os.makedirs(os.path.join(src, "zz"), exist_ok=True)
        with open(os.path.join(src, "zz", "bad.json"), "w",
                  encoding="utf-8") as handle:
            handle.write("{not json")
        manifest = pack_cache(src, str(tmp_path / "p.tar.gz"))
        assert manifest["corrupt_skipped"] == 1
        assert len(manifest["entries"]) == 4
        report = merge_cache([str(tmp_path / "p.tar.gz")],
                             str(tmp_path / "dest"))
        assert report.packed_corrupt == 1 and report.imported == 4

    def test_store_failures_propagate_to_merge_report(self, tmp_path):
        src = str(tmp_path / "src")
        seed_cache(src)
        archive = str(tmp_path / "p.tar.gz")
        pack_cache(src, archive,
                   slot_stats={"flow": {"store_failures": 2},
                               "stage": {"store_failures": 1}})
        report = merge_cache([archive, archive], str(tmp_path / "dest"))
        assert report.store_failures == {"flow": 4, "stage": 2}
        assert "WARNING" in report.describe()
        clean = pack_cache(src, str(tmp_path / "clean.tar.gz"),
                           slot_stats={"flow": {"store_failures": 0},
                                       "stage": {"store_failures": 0}})
        assert clean["slot_stats"]["flow"]["store_failures"] == 0
        quiet = merge_cache([str(tmp_path / "clean.tar.gz")],
                            str(tmp_path / "dest2"))
        assert "WARNING" not in quiet.describe()

    def test_merge_rejects_traversal_and_bad_manifests(self, tmp_path):
        with pytest.raises((ValueError, OSError)):
            merge_cache([str(tmp_path / "missing.tar.gz")],
                        str(tmp_path / "dest"))


# -- fleet == single worker on real benchmarks --------------------------------

class TestFleetEquality:
    def test_two_shards_equal_one_worker(self, tmp_path):
        jobs = jobs_from_benchmarks(["router", "i2c"],
                                    config=FlowConfig(iterations=1))
        solo_dir = str(tmp_path / "solo")
        solo = run_campaign(jobs, cache_dir=solo_dir, workers=1)
        assert solo.errors == 0

        plan = plan_shards(jobs, 2)
        archives = []
        shard_rows = {}
        for index in range(2):
            shard_dir = str(tmp_path / f"shard{index}")
            report = run_campaign(plan.select(jobs, index),
                                  cache_dir=shard_dir, workers=1,
                                  shard=plan.tag(index))
            assert report.errors == 0
            assert report.to_dict()["shard"]["index"] == index
            for row in report.results:
                shard_rows[row.name] = (row.key, row.outcome,
                                        row.nodes_before, row.nodes_after)
            archive = str(tmp_path / f"shard{index}.tar.gz")
            pack_cache(shard_dir, archive, slot_stats=report.cache_slots)
            archives.append(archive)

        merged_dir = str(tmp_path / "merged")
        merge_report = merge_cache(archives, merged_dir)
        assert sum(merge_report.store_failures.values()) == 0

        # Same keys, bit-identical payloads as the single worker.
        assert cache_inventory(merged_dir) == cache_inventory(solo_dir)
        # Same report rows as the single worker, reassembled.
        solo_rows = {row.name: (row.key, row.outcome, row.nodes_before,
                                row.nodes_after) for row in solo.results}
        assert shard_rows == solo_rows

        # Warm cross-shard rerun: all hits, bit-identical networks.
        warm = run_campaign(jobs, cache_dir=merged_dir, workers=1)
        assert warm.misses == 0 and warm.errors == 0
        assert warm.hits == warm.jobs == len(jobs)
        for row in warm.results:
            assert structure(row.network) \
                == structure(solo.result(row.name).network)


# -- history store integration ------------------------------------------------

class TestHistoryShardTag:
    def test_shard_tag_lands_in_runs_row(self, tmp_path):
        from repro.obs.history import HistoryStore, wrap_campaign_report
        jobs = random_jobs(2)
        plan = plan_shards(jobs, 2)
        merged = None
        docs = []
        for index in range(2):
            report = run_campaign(plan.select(jobs, index),
                                  cache_dir=str(tmp_path / f"c{index}"),
                                  workers=1, shard=plan.tag(index))
            docs.append(wrap_campaign_report(report.to_dict()))
        # The nightly merge job splices every shard's campaign section
        # into one document → one history row tagged with the plan.
        merged = docs[0]
        merged["campaign"] = [c for doc in docs for c in doc["campaign"]]
        with HistoryStore(str(tmp_path / "t.db")) as store:
            run_id = store.ingest(merged)
            assert run_id is not None
            row = store.runs(limit=1)[0]
        assert row["shard"] == "0/2,1/2"
        assert row["jobs"] == 2

    def test_unsharded_runs_have_null_shard(self, tmp_path):
        from repro.obs.history import HistoryStore, wrap_campaign_report
        report = run_campaign(random_jobs(1),
                              cache_dir=str(tmp_path / "c"), workers=1)
        with HistoryStore(str(tmp_path / "t.db")) as store:
            store.ingest(wrap_campaign_report(report.to_dict()))
            assert store.runs(limit=1)[0]["shard"] is None

    def test_pre_shard_db_is_migrated_in_place(self, tmp_path):
        from repro.obs.history import HistoryStore
        db = str(tmp_path / "old.db")
        conn = sqlite3.connect(db)
        # The pre-fleet runs table: no shard column.
        conn.executescript(
            "CREATE TABLE runs (run_id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " ingest_key TEXT NOT NULL UNIQUE, ingested_at REAL NOT NULL,"
            " suite TEXT, command TEXT, code_version TEXT, git_rev TEXT,"
            " schema_version INT, elapsed_s REAL, jobs INT, hits INT,"
            " misses INT, errors INT);")
        conn.commit()
        conn.close()
        with HistoryStore(db) as store:
            columns = {row[1] for row in
                       store.conn.execute("PRAGMA table_info(runs)")}
        assert "shard" in columns
