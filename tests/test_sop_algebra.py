"""Tests for cubes, SOP covers, and algebraic division."""

import random


from repro.sop.cube import (
    TAUTOLOGY_CUBE,
    cube_and,
    cube_common,
    cube_contains,
    cube_divide,
    cube_num_literals,
    cube_rename,
)
from repro.sop.division import divide, divide_by_cube, is_algebraic_divisor
from repro.sop.sop import Sop


def random_sop(rng, nvars, ncubes):
    sop = Sop()
    for _ in range(ncubes):
        pos = neg = 0
        for v in range(nvars):
            r = rng.random()
            if r < 0.3:
                pos |= 1 << v
            elif r < 0.6:
                neg |= 1 << v
        sop.add_cube((pos, neg))
    return sop


class TestCubes:
    def test_num_literals(self):
        assert cube_num_literals((0b101, 0b010)) == 3
        assert cube_num_literals(TAUTOLOGY_CUBE) == 0

    def test_cube_and_contradiction(self):
        assert cube_and((0b1, 0), (0, 0b1)) is None
        assert cube_and((0b1, 0), (0b10, 0)) == (0b11, 0)

    def test_containment(self):
        # a contains a&b (fewer literals = larger cube)
        assert cube_contains((0b1, 0), (0b11, 0))
        assert not cube_contains((0b11, 0), (0b1, 0))

    def test_cube_divide(self):
        assert cube_divide((0b11, 0), (0b01, 0)) == (0b10, 0)
        assert cube_divide((0b01, 0), (0b10, 0)) is None

    def test_cube_common(self):
        assert cube_common([(0b11, 0b100), (0b01, 0b100)]) == (0b01, 0b100)
        assert cube_common([]) == TAUTOLOGY_CUBE

    def test_cube_rename(self):
        assert cube_rename((0b01, 0b10), {0: 5, 1: 7}) == (1 << 5, 1 << 7)


class TestSop:
    def test_single_cube_containment_normal_form(self):
        sop = Sop()
        sop.add_cube((0b11, 0))  # a&b
        sop.add_cube((0b01, 0))  # a  (absorbs a&b)
        assert sop.cubes == [(0b01, 0)]
        sop.add_cube((0b11, 0))  # re-adding the contained cube is a no-op
        assert sop.cubes == [(0b01, 0)]

    def test_contradictory_cube_dropped(self):
        sop = Sop()
        sop.add_cube((0b1, 0b1))
        assert sop.is_const0()

    def test_constants(self):
        assert Sop.constant(False).is_const0()
        assert Sop.constant(True).is_const1()
        assert Sop.literal(2).cubes == [(0b100, 0)]
        assert Sop.literal(2, positive=False).cubes == [(0, 0b100)]

    def test_operators_match_semantics(self):
        rng = random.Random(0)
        for _ in range(60):
            n = rng.randint(1, 5)
            f = random_sop(rng, n, rng.randint(0, 5))
            g = random_sop(rng, n, rng.randint(0, 5))
            assert (f | g).to_truth_bits(n) == (f.to_truth_bits(n) | g.to_truth_bits(n))
            assert (f & g).to_truth_bits(n) == (f.to_truth_bits(n) & g.to_truth_bits(n))

    def test_complement(self):
        rng = random.Random(1)
        for _ in range(60):
            n = rng.randint(1, 5)
            f = random_sop(rng, n, rng.randint(0, 6))
            comp = f.complement()
            assert comp is not None
            full = (1 << (1 << n)) - 1
            assert comp.to_truth_bits(n) == f.to_truth_bits(n) ^ full

    def test_complement_cap(self):
        rng = random.Random(2)
        f = random_sop(rng, 8, 12)
        assert f.complement(max_cubes=1) is None or \
            len(f.complement(max_cubes=1).cubes) <= 1

    def test_literal_occurrences(self):
        sop = Sop([(0b11, 0), (0b01, 0b10)])  # a·b + a·!b (no absorption)
        occ = sop.literal_occurrences()
        assert occ[(0, True)] == 2
        assert occ[(1, True)] == 1
        assert occ[(1, False)] == 1

    def test_pretty(self):
        sop = Sop([(0b01, 0b10)])
        assert sop.pretty(["a", "b"]) == "a·!b"
        assert Sop.constant(True).pretty() == "1"


class TestDivision:
    def test_textbook_example(self):
        # F = ac + ad + bc + bd + e ; D = a + b  =>  Q = c + d, R = e
        a, b, c, d, e = (1 << i for i in range(5))
        f = Sop([(a | c, 0), (a | d, 0), (b | c, 0), (b | d, 0), (e, 0)])
        div = Sop([(a, 0), (b, 0)])
        q, r = divide(f, div)
        assert sorted(q.cubes) == [(c, 0), (d, 0)]
        assert r.cubes == [(e, 0)]

    def test_division_identity_random(self):
        rng = random.Random(3)
        for _ in range(80):
            n = rng.randint(2, 6)
            f = random_sop(rng, n, rng.randint(1, 8))
            d = random_sop(rng, n, rng.randint(1, 3))
            q, r = divide(f, d)
            recon = (q & d) | r
            assert recon.to_truth_bits(n) == f.to_truth_bits(n)

    def test_divide_by_cube(self):
        a, b, c = (1 << i for i in range(3))
        f = Sop([(a | b, 0), (a | c, 0), (b | c, 0)])
        q, r = divide_by_cube(f, (a, 0))
        assert sorted(q.cubes) == [(b, 0), (c, 0)]
        assert r.cubes == [(b | c, 0)]

    def test_empty_divisor(self):
        f = Sop([(1, 0)])
        q, r = divide(f, Sop())
        assert q.is_const0()
        assert r.cubes == f.cubes

    def test_is_algebraic_divisor(self):
        a, b, c = (1 << i for i in range(3))
        f = Sop([(a | c, 0), (b | c, 0)])
        assert is_algebraic_divisor(f, Sop([(a, 0), (b, 0)]))
        assert not is_algebraic_divisor(f, Sop([(a | b, 0)]))
