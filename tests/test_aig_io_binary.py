"""Tests for binary AIGER I/O."""

import io

import pytest

from repro.aig.aig import Aig, lit_not
from repro.aig.io_aiger import read_aag, write_aag_string
from repro.aig.io_aiger_binary import read_aig_binary, write_aig_binary
from repro.aig.simulate import po_tables
from repro.errors import AigError


def _round_trip(aig):
    buffer = io.BytesIO()
    write_aig_binary(aig, buffer)
    buffer.seek(0)
    return read_aig_binary(buffer)


def test_round_trip_function(random_aig_factory):
    for seed in range(4):
        aig = random_aig_factory(6, 60, seed=seed)
        back = _round_trip(aig)
        assert back.num_pis == aig.num_pis
        assert back.num_pos == aig.num_pos
        assert po_tables(back) == po_tables(aig)


def test_round_trip_names():
    aig = Aig()
    a = aig.add_pi("req")
    aig.add_po(lit_not(a), "gnt")
    back = _round_trip(aig)
    assert back.pi_name(0) == "req"
    assert back.po_name(0) == "gnt"


def test_file_round_trip(tmp_path, random_aig_factory):
    aig = random_aig_factory(5, 30, seed=1)
    path = str(tmp_path / "net.aig")
    write_aig_binary(aig, path)
    back = read_aig_binary(path)
    assert po_tables(back) == po_tables(aig)


def test_binary_matches_ascii(random_aig_factory):
    """ASCII and binary encodings of the same network agree functionally."""
    aig = random_aig_factory(6, 80, seed=2)
    from_ascii = read_aag(write_aag_string(aig))
    from_binary = _round_trip(aig)
    assert po_tables(from_ascii) == po_tables(from_binary)


def test_constant_pos():
    aig = Aig()
    aig.add_pi()
    aig.add_po(0)
    aig.add_po(1)
    back = _round_trip(aig)
    assert back.pos() == [0, 1]


def test_delta_encoding_multibyte(random_aig_factory):
    """Networks big enough to need multi-byte deltas still round-trip."""
    from repro.aig.compose import multiplier
    aig = Aig()
    a = aig.add_pis(8)
    b = aig.add_pis(8)
    for p in multiplier(aig, a, b):
        aig.add_po(p)
    back = _round_trip(aig)
    assert back.num_ands == aig.cleanup().num_ands
    # functional check on random words
    import random
    from repro.aig.simulate import po_words, simulate_words
    rng = random.Random(0)
    words = [rng.getrandbits(64) for _ in range(16)]
    assert po_words(back, simulate_words(back, words)) == \
        po_words(aig, simulate_words(aig, words))


def test_rejects_ascii_header():
    with pytest.raises(AigError):
        read_aig_binary(b"aag 1 1 0 1 0\n2\n2\n")


def test_rejects_truncation():
    from repro.aig.compose import multiplier
    aig = Aig()
    a = aig.add_pis(6)
    b = aig.add_pis(6)
    for p in multiplier(aig, a, b):
        aig.add_po(p)
    buffer = io.BytesIO()
    write_aig_binary(aig, buffer)
    data = buffer.getvalue()
    # Cut inside the AND delta stream (past header+outputs, before symbols).
    header_end = data.index(b"\n") + 1
    for _ in range(aig.num_pos):
        header_end = data.index(b"\n", header_end) + 1
    with pytest.raises(AigError):
        read_aig_binary(data[: header_end + 3])


class TestMalformedBinary:
    """Malformed binary inputs raise AigerParseError with a byte offset."""

    CASES = {
        "non_integer_header": b"aig x 1 0 0 0\n",
        "negative_count": b"aig 1 -1 0 0 0\n",
        "sequential": b"aig 1 0 1 0 0\n",
        "inconsistent_max_var": b"aig 5 1 0 0 1\n",
        "output_out_of_range": b"aig 1 1 0 1 0\n9\n",
        "negative_and_delta": b"aig 2 1 0 0 1\n\x05\x00",
        "truncated_delta": b"aig 2 1 0 0 1\n\x82",
        "symbol_index_range": b"aig 1 1 0 0 0\ni7 x\n",
    }

    @pytest.mark.parametrize("label", sorted(CASES))
    def test_rejected(self, label):
        from repro.errors import AigerParseError
        with pytest.raises(AigerParseError) as info:
            read_aig_binary(self.CASES[label])
        assert isinstance(info.value, AigError)

    def test_truncated_delta_names_the_offset(self):
        from repro.errors import AigerParseError
        with pytest.raises(AigerParseError) as info:
            read_aig_binary(b"aig 2 1 0 0 1\n\x82")
        assert info.value.offset is not None
        assert "byte offset" in str(info.value)

    def test_never_leaks_bare_value_error(self):
        for data in self.CASES.values():
            try:
                read_aig_binary(data)
            except AigError:
                pass
