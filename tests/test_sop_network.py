"""Tests for the SOP Boolean network (eliminate / kernel extraction)."""

from repro.aig.aig import Aig, lit_not
from repro.sat.equivalence import assert_equivalent
from repro.sop.network import SopNetwork
from repro.sop.sop import Sop


def test_round_trip_preserves_function(small_mult):
    net = SopNetwork.from_aig(small_mult)
    back = net.to_aig()
    assert_equivalent(small_mult, back)


def test_from_aig_folds_phases():
    aig = Aig()
    a, b = aig.add_pis(2)
    f = aig.add_and(a, lit_not(b))
    aig.add_po(lit_not(f))
    net = SopNetwork.from_aig(aig)
    assert net.num_nodes() == 1
    node, compl = net.pos[0]
    assert compl  # inverter captured on the PO
    assert_equivalent(aig, net.to_aig())


def test_constant_po():
    aig = Aig()
    aig.add_pi()
    aig.add_po(0)
    aig.add_po(1)
    net = SopNetwork.from_aig(aig)
    back = net.to_aig()
    assert back.pos() == [0, 1]


def test_eliminate_threshold_minus_one_reduces_literals(small_mult):
    net = SopNetwork.from_aig(small_mult)
    before = net.total_literals()
    eliminated = net.eliminate(-1)
    # threshold -1 only accepts literal-reducing collapses
    assert net.total_literals() <= before
    assert_equivalent(small_mult, net.to_aig())


def test_eliminate_large_threshold_grows_sops(small_mult):
    net = SopNetwork.from_aig(small_mult)
    nodes_before = net.num_nodes()
    eliminated = net.eliminate(50)
    assert eliminated > 0
    assert net.num_nodes() < nodes_before
    assert_equivalent(small_mult, net.to_aig())


def test_eliminate_respects_max_cubes(small_mult):
    net = SopNetwork.from_aig(small_mult)
    net.eliminate(300, max_cubes=4)
    for sop in net.nodes.values():
        assert sop.num_cubes() <= 4 or True  # growth capped per collapse
    assert_equivalent(small_mult, net.to_aig())


def test_extract_kernels_shares_logic():
    # two outputs sharing divisor (a + b)
    net = SopNetwork("shared")
    a = net.add_pi("a")
    b = net.add_pi("b")
    c = net.add_pi("c")
    d = net.add_pi("d")
    n1 = net.add_node(Sop([(1 << a | 1 << c, 0), (1 << b | 1 << c, 0)]))
    n2 = net.add_node(Sop([(1 << a | 1 << d, 0), (1 << b | 1 << d, 0)]))
    net.add_po(n1)
    net.add_po(n2)
    reference = net.to_aig()
    before = net.total_literals()
    saving = net.extract_kernels()
    assert saving > 0
    assert net.total_literals() < before
    assert net.num_nodes() == 3  # the kernel became a node
    assert_equivalent(reference, net.to_aig())


def test_extract_common_cubes():
    net = SopNetwork("cubes")
    a = net.add_pi()
    b = net.add_pi()
    c = net.add_pi()
    # three nodes all containing cube a·b
    mask = (1 << a) | (1 << b)
    n1 = net.add_node(Sop([(mask | 1 << c, 0)]))
    n2 = net.add_node(Sop([(mask, 1 << c)]))
    n3 = net.add_node(Sop([(mask, 0)]))
    for n in (n1, n2, n3):
        net.add_po(n)
    reference = net.to_aig()
    saving = net.extract_common_cubes()
    assert saving > 0
    assert_equivalent(reference, net.to_aig())


def test_topological_order_valid(small_adder):
    net = SopNetwork.from_aig(small_adder)
    order = net.topological_order()
    seen = set(net.pis)
    for node in order:
        for fanin in net.nodes[node].support():
            assert fanin in seen
        seen.add(node)


def test_eliminate_then_kernel_round_trip(small_adder):
    net = SopNetwork.from_aig(small_adder)
    net.eliminate(5)
    net.extract_kernels(max_rounds=10)
    net.extract_common_cubes(max_rounds=10)
    assert_equivalent(small_adder, net.to_aig())
