"""Edge cases and failure injection across modules."""

import pytest

from repro.aig.aig import Aig, lit_not
from repro.errors import AigError, BddLimitError, ReproError, SatError


class TestDegenerateNetworks:
    def test_po_on_pi(self):
        aig = Aig()
        a = aig.add_pi()
        aig.add_po(a)
        aig.add_po(lit_not(a))
        assert aig.num_ands == 0
        assert aig.depth == 0
        from repro.sbm.flow import sbm_flow
        from repro.sbm.config import FlowConfig
        optimized, _stats = sbm_flow(aig, FlowConfig(iterations=1))
        from repro.aig.simulate import po_tables
        assert po_tables(optimized) == po_tables(aig)

    def test_constant_only_network(self):
        aig = Aig()
        aig.add_pi()
        aig.add_po(0)
        aig.add_po(1)
        from repro.opt.balance import balance
        balanced = balance(aig)
        assert balanced.pos() == [0, 1]
        from repro.mapping.lut import map_luts
        assert map_luts(aig).area == 0

    def test_no_pos(self):
        aig = Aig()
        aig.add_pis(3)
        assert aig.topological_order() == []
        from repro.partition.partitioner import partition_network
        assert partition_network(aig) == []

    def test_single_gate_partition(self):
        aig = Aig()
        a, b = aig.add_pis(2)
        aig.add_po(aig.add_and(a, b))
        from repro.sbm.boolean_difference import boolean_difference_pass
        stats = boolean_difference_pass(aig)
        assert stats.partitions == 1
        from repro.aig.simulate import po_tables
        assert po_tables(aig)[0] == 0b1000

    def test_optimizers_handle_duplicate_pos(self):
        aig = Aig()
        a, b = aig.add_pis(2)
        f = aig.add_and(a, b)
        for _ in range(4):
            aig.add_po(f)
        from repro.opt.resub import resub
        resub(aig)
        aig.check()
        assert aig.num_pos == 4


class TestFailureInjection:
    def test_corrupt_aag_rejected(self):
        from repro.aig.io_aiger import read_aag
        with pytest.raises((AigError, ValueError, IndexError)):
            read_aag("aag 2 1 0 1 1\n2\n4\n4 9 9\n")  # literal past maxvar

    def test_sat_zero_literal(self):
        from repro.sat.solver import SatSolver
        with pytest.raises(SatError):
            SatSolver().add_clause([1, 0])

    def test_bdd_limit_is_repro_error(self):
        assert issubclass(BddLimitError, ReproError)
        from repro.bdd.manager import BddManager
        mgr = BddManager(2, node_limit=4)
        with pytest.raises(BddLimitError):
            mgr.new_var()  # terminals + 2 vars = 4, the next one trips

    def test_window_function_requires_complete_cut(self):
        from repro.opt.refactor import window_function
        aig = Aig()
        a, b, c = aig.add_pis(3)
        f = aig.add_and(aig.add_and(a, b), c)
        aig.add_po(f)
        # leaves that do not cut the cone -> KeyError surfaces the misuse
        from repro.aig.aig import lit_node
        with pytest.raises(KeyError):
            window_function(aig, lit_node(f), [lit_node(a) >> 1])

    def test_flow_on_empty_network(self):
        from repro.sbm.config import FlowConfig
        from repro.sbm.flow import sbm_flow
        aig = Aig()
        aig.add_pi()
        aig.add_po(2)  # the PI's literal
        optimized, _ = sbm_flow(aig, FlowConfig(iterations=1))
        assert optimized.num_ands == 0

    def test_sop_network_pi_po(self):
        from repro.sop.network import SopNetwork
        aig = Aig()
        a = aig.add_pi("x")
        aig.add_po(lit_not(a), "y")
        net = SopNetwork.from_aig(aig)
        back = net.to_aig()
        from repro.aig.simulate import po_tables
        assert po_tables(back) == po_tables(aig)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro.errors import BenchmarkError
        for exc in (AigError, BddLimitError, SatError, BenchmarkError):
            assert issubclass(exc, ReproError)
