"""Edge cases and failure injection across modules."""

import pytest

from repro.aig.aig import Aig, lit_not
from repro.errors import AigError, BddLimitError, ReproError, SatError


class TestDegenerateNetworks:
    def test_po_on_pi(self):
        aig = Aig()
        a = aig.add_pi()
        aig.add_po(a)
        aig.add_po(lit_not(a))
        assert aig.num_ands == 0
        assert aig.depth == 0
        from repro.sbm.flow import sbm_flow
        from repro.sbm.config import FlowConfig
        optimized, _stats = sbm_flow(aig, FlowConfig(iterations=1))
        from repro.aig.simulate import po_tables
        assert po_tables(optimized) == po_tables(aig)

    def test_constant_only_network(self):
        aig = Aig()
        aig.add_pi()
        aig.add_po(0)
        aig.add_po(1)
        from repro.opt.balance import balance
        balanced = balance(aig)
        assert balanced.pos() == [0, 1]
        from repro.mapping.lut import map_luts
        assert map_luts(aig).area == 0

    def test_no_pos(self):
        aig = Aig()
        aig.add_pis(3)
        assert aig.topological_order() == []
        from repro.partition.partitioner import partition_network
        assert partition_network(aig) == []

    def test_single_gate_partition(self):
        aig = Aig()
        a, b = aig.add_pis(2)
        aig.add_po(aig.add_and(a, b))
        from repro.sbm.boolean_difference import boolean_difference_pass
        stats = boolean_difference_pass(aig)
        assert stats.partitions == 1
        from repro.aig.simulate import po_tables
        assert po_tables(aig)[0] == 0b1000

    def test_optimizers_handle_duplicate_pos(self):
        aig = Aig()
        a, b = aig.add_pis(2)
        f = aig.add_and(a, b)
        for _ in range(4):
            aig.add_po(f)
        from repro.opt.resub import resub
        resub(aig)
        aig.check()
        assert aig.num_pos == 4


class TestFailureInjection:
    def test_corrupt_aag_rejected(self):
        from repro.aig.io_aiger import read_aag
        from repro.errors import AigerParseError
        with pytest.raises(AigerParseError):
            read_aag("aag 2 1 0 1 1\n2\n4\n4 9 9\n")  # literal past maxvar

    def test_sat_zero_literal(self):
        from repro.sat.solver import SatSolver
        with pytest.raises(SatError):
            SatSolver().add_clause([1, 0])

    def test_bdd_limit_is_repro_error(self):
        assert issubclass(BddLimitError, ReproError)
        from repro.bdd.manager import BddManager
        mgr = BddManager(2, node_limit=4)
        with pytest.raises(BddLimitError):
            mgr.new_var()  # terminals + 2 vars = 4, the next one trips

    def test_window_function_requires_complete_cut(self):
        from repro.opt.refactor import window_function
        aig = Aig()
        a, b, c = aig.add_pis(3)
        f = aig.add_and(aig.add_and(a, b), c)
        aig.add_po(f)
        # leaves that do not cut the cone -> KeyError surfaces the misuse
        from repro.aig.aig import lit_node
        with pytest.raises(KeyError):
            window_function(aig, lit_node(f), [lit_node(a) >> 1])

    def test_flow_on_empty_network(self):
        from repro.sbm.config import FlowConfig
        from repro.sbm.flow import sbm_flow
        aig = Aig()
        aig.add_pi()
        aig.add_po(2)  # the PI's literal
        optimized, _ = sbm_flow(aig, FlowConfig(iterations=1))
        assert optimized.num_ands == 0

    def test_sop_network_pi_po(self):
        from repro.sop.network import SopNetwork
        aig = Aig()
        a = aig.add_pi("x")
        aig.add_po(lit_not(a), "y")
        net = SopNetwork.from_aig(aig)
        back = net.to_aig()
        from repro.aig.simulate import po_tables
        assert po_tables(back) == po_tables(aig)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro.errors import BenchmarkError
        for exc in (AigError, BddLimitError, SatError, BenchmarkError):
            assert issubclass(exc, ReproError)

    def test_aiger_parse_error_is_aig_error(self):
        from repro.errors import AigerParseError
        assert issubclass(AigerParseError, AigError)
        exc = AigerParseError("bad", line=3)
        assert exc.line == 3 and "line 3" in str(exc)
        exc = AigerParseError("bad", offset=17)
        assert exc.offset == 17 and "byte offset 17" in str(exc)


# -- hypothesis property tests -------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


def _random_aig_spec(max_pis=6, max_nodes=40):
    return st.tuples(
        st.integers(min_value=1, max_value=max_pis),
        st.integers(min_value=0, max_value=max_nodes),
        st.randoms(use_true_random=False),
    )


def _build_random(num_pis, num_nodes, rng):
    aig = Aig()
    literals = list(aig.add_pis(num_pis))
    for _ in range(num_nodes):
        a = rng.choice(literals) ^ rng.getrandbits(1)
        b = rng.choice(literals) ^ rng.getrandbits(1)
        literals.append(aig.add_and(a, b))
    for literal in literals[-3:]:
        aig.add_po(literal ^ rng.getrandbits(1))
    return aig.cleanup()


class TestCompactAigRoundTrip:
    """CompactAig JSON round-trips are lossless and byte-stable."""

    @given(_random_aig_spec())
    @settings(max_examples=40, deadline=None)
    def test_json_round_trip(self, spec):
        import json
        from repro.parallel.window_io import CompactAig
        num_pis, num_nodes, rng = spec
        aig = _build_random(num_pis, num_nodes, rng)
        compact = CompactAig.from_aig(aig)
        payload = json.dumps({"num_pis": compact.num_pis,
                              "gates": [list(g) for g in compact.gates],
                              "outputs": compact.outputs})
        data = json.loads(payload)
        rebuilt = CompactAig(num_pis=data["num_pis"],
                             gates=[tuple(g) for g in data["gates"]],
                             outputs=data["outputs"])
        from repro.aig.simulate import po_tables
        back = rebuilt.to_aig()
        assert po_tables(back) == po_tables(aig)
        # encode(decode(encode(x))) == encode(x): the byte-stable contract
        again = CompactAig.from_aig(back)
        assert again.gates == compact.gates
        assert again.outputs == compact.outputs
        assert again.num_pis == compact.num_pis

    @given(_random_aig_spec())
    @settings(max_examples=20, deadline=None)
    def test_round_trip_preserves_counts(self, spec):
        from repro.parallel.window_io import CompactAig
        num_pis, num_nodes, rng = spec
        aig = _build_random(num_pis, num_nodes, rng)
        back = CompactAig.from_aig(aig).to_aig()
        assert back.num_pis == aig.num_pis
        assert back.num_pos == aig.num_pos
        assert back.num_ands == aig.num_ands


class TestFlowOnDegenerateNetworks:
    """The full flow survives interface-degenerate inputs unchanged in
    function: zero POs, constant outputs, dangling nodes, identities."""

    def _flow(self, aig):
        from repro.sbm.config import FlowConfig
        from repro.sbm.flow import sbm_flow
        optimized, _stats = sbm_flow(aig, FlowConfig(iterations=1))
        return optimized

    def test_zero_po_network(self):
        aig = Aig()
        a, b = aig.add_pis(2)
        aig.add_and(a, b)  # dangling gate, no POs at all
        optimized = self._flow(aig)
        assert optimized.num_pos == 0
        assert optimized.num_ands == 0

    def test_const_only_outputs(self):
        from repro.aig.simulate import po_tables
        aig = Aig()
        aig.add_pis(3)
        aig.add_po(0)
        aig.add_po(1)
        optimized = self._flow(aig)
        assert po_tables(optimized) == po_tables(aig)
        assert optimized.num_ands == 0

    def test_dangling_nodes_are_swept(self):
        from repro.aig.simulate import po_tables
        aig = Aig()
        a, b, c = aig.add_pis(3)
        keep = aig.add_and(a, b)
        aig.add_and(b, c)            # dead: never reaches a PO
        aig.add_and(aig.add_and(a, c), b)  # dead cone
        aig.add_po(keep)
        optimized = self._flow(aig)
        assert po_tables(optimized) == po_tables(aig.cleanup())
        assert optimized.num_ands <= 1

    def test_single_input_identity(self):
        from repro.aig.simulate import po_tables
        aig = Aig()
        a = aig.add_pi()
        aig.add_po(a)
        aig.add_po(lit_not(a))
        optimized = self._flow(aig)
        assert po_tables(optimized) == po_tables(aig)
        assert optimized.num_ands == 0

    @given(st.randoms(use_true_random=False))
    @settings(max_examples=8, deadline=None)
    def test_flow_preserves_function_on_tiny_networks(self, rng):
        from repro.aig.simulate import po_tables
        aig = _build_random(1 + rng.randrange(5), rng.randrange(12), rng)
        optimized = self._flow(aig)
        assert po_tables(optimized) == po_tables(aig)
