"""Tests for the classic optimization passes (balance/rewrite/refactor/resub)."""

import pytest

from repro.aig.aig import Aig, lit_node, lit_not
from repro.aig.simulate import po_tables
from repro.opt.balance import balance
from repro.opt.refactor import refactor, window_function
from repro.opt.resub import resub
from repro.opt.rewrite import RewriteLibrary, default_library, rewrite
from repro.opt.scripts import compress2rs_step, quick_optimize, resyn2rs
from repro.opt.shared import try_replace
from repro.sat.equivalence import assert_equivalent
from repro.tt.truthtable import TruthTable


class TestTryReplace:
    def test_commits_profitable_move(self):
        aig = Aig()
        a, b, c = aig.add_pis(3)
        chain = aig.add_and(aig.add_and(a, b), aig.add_and(a, c))
        aig.add_po(chain)
        root = lit_node(chain)

        def build():
            return aig.add_and(a, aig.add_and(b, c))

        gain = try_replace(aig, root, build, min_gain=1)
        assert gain is not None and gain >= 1
        aig.check()

    def test_rejects_unprofitable_and_rolls_back(self):
        aig = Aig()
        a, b = aig.add_pis(2)
        f = aig.add_and(a, b)
        aig.add_po(f)
        size = aig.num_ands

        def build():
            # a worse implementation: (a & b) | (a & b & a)... bigger
            return aig.add_and(aig.add_and(a, b), aig.add_or(a, b))

        assert try_replace(aig, lit_node(f), build, min_gain=1) is None
        assert aig.num_ands == size
        aig.check()

    def test_rejects_cycle_creating_move(self):
        aig = Aig()
        a, b, c = aig.add_pis(3)
        inner = aig.add_and(a, b)
        outer = aig.add_and(inner, c)
        aig.add_po(outer)

        def build():
            # references the root's own fanout cone -> would create a cycle
            return aig.add_and(outer, a)

        assert try_replace(aig, lit_node(inner), build, min_gain=0) is None
        aig.check()

    def test_zero_gain_reshape_allowed(self):
        aig = Aig()
        a, b, c = aig.add_pis(3)
        f = aig.add_and(aig.add_and(a, b), c)
        aig.add_po(f)

        def build():
            return aig.add_and(a, aig.add_and(b, c))

        gain = try_replace(aig, lit_node(f), build, min_gain=0)
        assert gain == 0
        aig.check()


class TestBalance:
    def test_reduces_depth_of_chain(self):
        aig = Aig()
        xs = aig.add_pis(8)
        acc = xs[0]
        for x in xs[1:]:
            acc = aig.add_and(acc, x)
        aig.add_po(acc)
        assert aig.depth == 7
        balanced = balance(aig)
        assert balanced.depth == 3
        assert_equivalent(aig, balanced)

    def test_never_increases_size(self, random_aig_factory):
        for seed in range(4):
            aig = random_aig_factory(8, 100, seed=seed)
            balanced = balance(aig)
            assert balanced.num_ands <= aig.num_ands
            assert balanced.depth <= aig.depth
            assert_equivalent(aig, balanced)

    def test_respects_complement_boundaries(self):
        aig = Aig()
        a, b, c = aig.add_pis(3)
        # NOT between ANDs blocks tree collection
        f = aig.add_and(lit_not(aig.add_and(a, b)), c)
        aig.add_po(f)
        assert_equivalent(aig, balance(aig))


class TestRewriteLibrary:
    def test_build_implements_any_function(self):
        import random
        rng = random.Random(0)
        lib = RewriteLibrary()
        for _ in range(100):
            n = rng.randint(2, 4)
            t = TruthTable(rng.getrandbits(1 << n), n)
            aig = Aig()
            xs = aig.add_pis(n)
            out = lib.build(aig, t, xs)
            aig.add_po(out)
            assert po_tables(aig)[0] == t.bits

    def test_default_library_is_shared(self):
        assert default_library() is default_library()


class TestPasses:
    @pytest.mark.parametrize("pass_fn", [rewrite, refactor, resub])
    def test_pass_preserves_function(self, pass_fn, random_aig_factory):
        for seed in range(3):
            aig = random_aig_factory(8, 150, seed=seed)
            reference = aig.cleanup()
            pass_fn(aig)
            aig.check()
            assert_equivalent(reference, aig.cleanup())

    @pytest.mark.parametrize("pass_fn", [rewrite, refactor, resub])
    def test_pass_never_grows(self, pass_fn, random_aig_factory):
        aig = random_aig_factory(8, 150, seed=11)
        before = aig.cleanup().num_ands
        pass_fn(aig)
        assert aig.cleanup().num_ands <= before

    def test_rewrite_finds_gains_on_redundant_logic(self, random_aig_factory):
        aig = random_aig_factory(8, 200, seed=4)
        assert rewrite(aig) > 0

    def test_node_filter_restricts_scope(self, random_aig_factory):
        aig = random_aig_factory(8, 150, seed=5)
        assert rewrite(aig, node_filter=set()) == 0

    def test_resub_zero_finds_constant_nodes(self):
        aig = Aig()
        a, b = aig.add_pis(2)
        # f = (a&b) & (a&!b) == 0, built structurally
        f = aig.add_and(aig.add_and(a, b), aig.add_and(a, lit_not(b)))
        g = aig.add_or(f, b)
        aig.add_po(g)
        reference = aig.cleanup()
        resub(aig, max_inserted=0)
        assert_equivalent(reference, aig.cleanup())
        assert aig.cleanup().num_ands <= 1


class TestWindowFunction:
    def test_matches_complete_simulation(self, random_aig_factory):
        from repro.aig.simulate import simulate_complete
        aig = random_aig_factory(5, 40, seed=6)
        values = simulate_complete(aig)
        for n in list(aig.ands())[:10]:
            table = window_function(aig, n, aig.pis())
            assert table.bits == values[n]


class TestScripts:
    def test_resyn2rs_improves_and_preserves(self, small_mult):
        optimized = resyn2rs(small_mult, max_iterations=2)
        assert optimized.num_ands <= small_mult.num_ands
        assert_equivalent(small_mult, optimized)

    def test_quick_optimize(self, random_aig_factory):
        aig = random_aig_factory(8, 120, seed=7)
        optimized = quick_optimize(aig)
        assert optimized.num_ands <= aig.num_ands
        assert_equivalent(aig, optimized)

    def test_compress2rs_step(self, random_aig_factory):
        aig = random_aig_factory(8, 120, seed=8)
        out = compress2rs_step(aig.cleanup())
        assert_equivalent(aig, out)
