"""Tests for repro.fuzz: generators, oracle rungs, minimizer, triage,
and the acceptance criteria from the fuzzing issue (soundness on an
injected bug, bounded minimization, one-command bundle replay, and a
deterministic clean run)."""

import json
import os
import subprocess
import sys

import pytest

from repro.aig.aig import Aig
from repro.fuzz import (CaseRecipe, FuzzConfig, OracleConfig, build_case,
                        iter_recipes, load_bundle, load_fuzz_suite, minimize,
                        replay_bundle, run_case, run_fuzz, write_bundle)
from repro.fuzz import faults
from repro.fuzz.generators import (GENERATOR_NAMES, MUTATION_OPS,
                                   build_case as _build_case)
from repro.fuzz.oracle import network_key
from repro.fuzz.triage import FuzzCorpus, build_bundle
from repro.parallel.window_io import CompactAig

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Fast oracle: CEC only, no hotpath/jobs/chaos re-runs.
CEC_ONLY = OracleConfig(checks=("cec",))

#: Fast generator mix: skip the (slower) EPFL mutants.
FAST_GENS = ("random-aig", "random-sop")


def _fast_config(**overrides):
    defaults = dict(budget=4, seed=1234, generators=FAST_GENS,
                    max_gates=25, oracle=CEC_ONLY)
    defaults.update(overrides)
    return FuzzConfig(**defaults)


def _tiny_network(num_ands=6):
    aig = Aig("tiny")
    a, b, c = aig.add_pis(3)
    literals = [a, b, c]
    for i in range(num_ands):
        literals.append(aig.add_and(literals[-1], literals[i % 3] ^ (i & 1)))
    aig.add_po(literals[-1])
    aig.add_po(literals[-2] ^ 1)
    return aig.cleanup()


class TestGenerators:
    def test_recipes_are_deterministic_and_bounded(self):
        first = list(iter_recipes(42, 30))
        second = list(iter_recipes(42, 30))
        assert [r.canonical() for r in first] == \
            [r.canonical() for r in second]
        assert len(first) == 30
        assert all(r.generator in GENERATOR_NAMES for r in first)

    def test_different_seed_different_recipes(self):
        a = [r.canonical() for r in iter_recipes(1, 10)]
        b = [r.canonical() for r in iter_recipes(2, 10)]
        assert a != b

    def test_built_cases_are_valid_and_deterministic(self):
        for recipe in iter_recipes(7, 12, max_gates=30):
            aig = build_case(recipe)
            aig.check()
            assert aig.num_pos > 0
            assert network_key(aig) == network_key(_build_case(recipe))

    def test_recipe_round_trips_through_dict(self):
        for recipe in iter_recipes(3, 6):
            back = CaseRecipe.from_dict(recipe.to_dict())
            assert back.canonical() == recipe.canonical()
            assert back.case_id == recipe.case_id

    def test_every_mutator_yields_a_buildable_network(self):
        import random
        from repro.bench.registry import get_benchmark
        from repro.fuzz.generators import _MUTATORS
        assert set(_MUTATORS) == set(MUTATION_OPS)
        base = CompactAig.from_aig(get_benchmark("router", scaled=True))
        for op, mutate in _MUTATORS.items():
            mutated = mutate(random.Random(13), base)
            aig = mutated.to_aig()
            aig.check()
            again = mutate(random.Random(13), base)
            assert again.gates == mutated.gates, op

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError):
            build_case(CaseRecipe("no-such-generator", 0, {}))


class TestOracleRungs:
    """Each injected fault kind trips exactly its own oracle rung."""

    def test_clean_network_passes(self):
        verdict = run_case(_tiny_network(), CEC_ONLY)
        assert verdict.ok
        assert verdict.primary is None
        assert verdict.signature

    def test_flip_po_trips_cec(self):
        with faults.injected("flip-po:1"):
            verdict = run_case(_tiny_network(), CEC_ONLY)
        primary = verdict.primary
        assert primary is not None and primary.check == "cec"
        assert primary.kind == "EquivalenceError"
        assert primary.stage == "final"
        assert primary.cex is not None

    def test_crash_trips_crash_rung(self):
        with faults.injected("crash:1"):
            verdict = run_case(_tiny_network(), CEC_ONLY)
        primary = verdict.primary
        assert primary is not None and primary.check == "crash"
        assert primary.kind == "RuntimeError"

    def test_refpath_flip_trips_only_hotpath(self):
        config = OracleConfig(checks=("cec", "hotpath"))
        with faults.injected("refpath-flip:1"):
            verdict = run_case(_tiny_network(), config)
        checks = [f.check for f in verdict.failures]
        assert checks == ["hotpath"]
        assert verdict.failures[0].kind == "HotpathDivergence"

    def test_jobs_flip_trips_only_jobs(self):
        config = OracleConfig(checks=("cec", "jobs"), jobs=2)
        with faults.injected("jobs-flip:1"):
            verdict = run_case(_tiny_network(), config)
        checks = [f.check for f in verdict.failures]
        assert checks == ["jobs"]
        assert verdict.failures[0].kind == "JobsDivergence"

    def test_threshold_gates_the_fault(self):
        with faults.injected("flip-po:9999"):
            verdict = run_case(_tiny_network(), CEC_ONLY)
        assert verdict.ok


class TestFaultSpecs:
    def test_parse_round_trip(self):
        for kind in faults.FAULT_KINDS:
            fault = faults.InjectedFault.parse(f"{kind}:3")
            assert fault.kind == kind and fault.threshold == 3
            assert fault.spec == f"{kind}:3"

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            faults.InjectedFault.parse("frobnicate:1")

    def test_env_var_installs_fault(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "crash:5")
        active = faults.active()
        assert active is not None and active.spec == "crash:5"
        # A programmatic fault wins over the environment.
        with faults.injected("flip-po:1") as fault:
            assert faults.active() is fault
        assert faults.active().spec == "crash:5"

    def test_injected_none_is_noop(self):
        with faults.injected(None) as fault:
            assert fault is None
            assert faults.active() is None


class TestMinimizer:
    def _failing_setup(self):
        from tests.conftest import make_random_aig
        aig = make_random_aig(5, 40, seed=11)

        def predicate(candidate):
            with faults.injected("flip-po:2"):
                verdict = run_case(candidate, CEC_ONLY)
            primary = verdict.primary
            return primary is not None and primary.check == "cec"

        return aig, predicate

    def test_shrinks_to_quarter_and_preserves_failure(self):
        aig, predicate = self._failing_setup()
        result = minimize(aig, predicate, max_evals=150)
        assert result.nodes_after <= max(2, result.nodes_before // 4)
        assert predicate(result.network)
        assert result.ratio <= 0.25 or result.nodes_after <= 2

    def test_minimization_is_deterministic(self):
        aig, predicate = self._failing_setup()
        first = minimize(aig, predicate, max_evals=150)
        second = minimize(aig, predicate, max_evals=150)
        assert CompactAig.from_aig(first.network).gates == \
            CompactAig.from_aig(second.network).gates

    def test_rejects_non_failing_input(self):
        with pytest.raises(ValueError):
            minimize(_tiny_network(), lambda a: False)


class TestSoundnessLoop:
    """Acceptance: an injected bug is found within a fixed-seed budget,
    minimized, bundled, and reproduced — from the bundle alone."""

    def test_injected_bug_found_minimized_and_replayed(self, tmp_path):
        bundle_dir = str(tmp_path / "bundles")
        with faults.injected("flip-po:2"):
            report = run_fuzz(_fast_config(budget=500, seed=99,
                                           bundle_dir=bundle_dir,
                                           stop_after_failures=1))
        assert report.failures == 1
        assert len(report.bundles) == 1
        row = next(r for r in report.cases if not r.verdict.ok)
        assert row.minimized_nodes is not None
        assert row.minimized_nodes <= max(2, row.verdict.nodes_before // 4)

        bundle = load_bundle(report.bundles[0])
        assert bundle.injected == "flip-po:2"
        assert bundle.fingerprint == row.fingerprint
        replay = replay_bundle(bundle)
        assert replay.reproduced
        assert replay.verdict.primary.check == "cec"

    def test_cli_repro_from_bundle_alone(self, tmp_path):
        bundle_dir = str(tmp_path / "bundles")
        with faults.injected("flip-po:2"):
            report = run_fuzz(_fast_config(budget=500, seed=99,
                                           bundle_dir=bundle_dir,
                                           stop_after_failures=1))
        assert report.bundles
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO, "src"))
        env.pop(faults.ENV_VAR, None)  # the bundle alone must suffice
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fuzz", "repro",
             report.bundles[0]],
            cwd=REPO, env=env, capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "REPRODUCED" in proc.stdout


class TestCleanRunDeterminism:
    """Acceptance: a clean run has zero failures and two runs with the
    same seed produce byte-identical recipes."""

    def test_two_runs_agree(self):
        first = run_fuzz(_fast_config(budget=6, seed=2026))
        second = run_fuzz(_fast_config(budget=6, seed=2026))
        assert first.failures == 0 and second.failures == 0
        assert [r.recipe.canonical() for r in first.cases] == \
            [r.recipe.canonical() for r in second.cases]
        assert [r.verdict.signature for r in first.cases] == \
            [r.verdict.signature for r in second.cases]


class TestTriage:
    def _bundle(self):
        recipe = next(iter(iter_recipes(5, 1, generators=FAST_GENS)))
        network = build_case(recipe)
        with faults.injected("flip-po:1"):
            verdict = run_case(network, CEC_ONLY)
            return build_bundle(recipe, CEC_ONLY, network, verdict, None)

    def test_write_bundle_deduplicates(self, tmp_path):
        bundle = self._bundle()
        path, new = write_bundle(str(tmp_path), bundle)
        again, renew = write_bundle(str(tmp_path), bundle)
        assert new and not renew
        assert path == again
        assert len(list(tmp_path.iterdir())) == 1
        assert bundle.fingerprint in os.path.basename(path)

    def test_bundle_json_round_trip(self, tmp_path):
        bundle = self._bundle()
        path, _ = write_bundle(str(tmp_path), bundle)
        loaded = load_bundle(path)
        assert loaded.fingerprint == bundle.fingerprint
        assert CaseRecipe.from_dict(loaded.recipe).canonical() == \
            CaseRecipe.from_dict(bundle.recipe).canonical()
        assert loaded.injected == bundle.injected == "flip-po:1"
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["schema"] == "repro.fuzz/bundle-v1"

    def test_corpus_keeps_only_novel_signatures(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        config = _fast_config(budget=4, seed=77, corpus_dir=corpus_dir)
        first = run_fuzz(config)
        assert first.failures == 0
        assert first.corpus_added >= 1
        second = run_fuzz(config)
        assert second.corpus_replayed == first.corpus_added
        assert second.corpus_added == 0

    def test_unwritable_corpus_degrades_to_memory(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("not a directory")
        corpus = FuzzCorpus(str(blocked / "corpus"))
        recipe = next(iter(iter_recipes(5, 1, generators=FAST_GENS)))
        # Nothing persists, but in-run novelty dedup keeps working.
        assert not corpus.add_if_novel(recipe, "sig-a")
        assert len(corpus) == 1
        assert not corpus.add_if_novel(recipe, "sig-a")
        assert corpus.added == 0


class TestSuiteLoading:
    def test_repo_fuzz_suite_tiers(self):
        path = os.path.join(REPO, "suites", "fuzz.toml")
        smoke = load_fuzz_suite(path, "smoke")
        assert smoke.name == "fuzz:smoke"
        assert smoke.budget == 200
        assert smoke.oracle.checks == ("cec", "hotpath")
        nightly = load_fuzz_suite(path, "nightly")
        assert nightly.budget > smoke.budget
        assert set(nightly.oracle.checks) == {"cec", "hotpath", "jobs",
                                              "chaos"}
        # The file's default tier resolves without naming one.
        assert load_fuzz_suite(path).name == "fuzz:smoke"

    def test_unknown_tier_rejected(self):
        path = os.path.join(REPO, "suites", "fuzz.toml")
        with pytest.raises(ValueError):
            load_fuzz_suite(path, "no-such-tier")


class TestCampaignCitizenship:
    def test_fuzz_run_records_campaign_report(self, tmp_path):
        from repro import obs
        db = str(tmp_path / "telemetry.db")
        session = obs.enable()
        try:
            report = run_fuzz(_fast_config(budget=2, seed=5),
                              history_db=db)
        finally:
            obs.disable()
        assert report.executed == 2
        assert len(session.campaign_reports) == 1
        campaign = session.campaign_reports[0]
        assert campaign.suite == "fuzz:adhoc"
        assert len(campaign.results) == 2
        from repro.obs.history import HistoryStore
        with HistoryStore(db) as store:
            assert store.run_count() == 1
