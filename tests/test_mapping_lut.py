"""Tests for the area-oriented K-LUT mapper."""

from repro.aig.aig import Aig, lit_node
from repro.mapping.lut import map_luts


def test_cover_is_closed(random_aig_factory):
    aig = random_aig_factory(8, 150, seed=0)
    mapping = map_luts(aig, k=6)
    for root, leaves in mapping.luts.items():
        for leaf in leaves:
            assert aig.is_pi(leaf) or leaf in mapping.luts or leaf == 0


def test_cover_reaches_all_pos(random_aig_factory):
    aig = random_aig_factory(8, 150, seed=1)
    mapping = map_luts(aig, k=6)
    for po in aig.pos():
        node = lit_node(po)
        if aig.is_and(node):
            assert node in mapping.luts


def test_k_bound(random_aig_factory):
    aig = random_aig_factory(8, 150, seed=2)
    for k in (3, 4, 6):
        mapping = map_luts(aig, k=k)
        for leaves in mapping.luts.values():
            assert len(leaves) <= k


def test_area_not_worse_than_node_count(random_aig_factory):
    """Each LUT covers >= 1 AND, so LUT count <= AND count."""
    aig = random_aig_factory(8, 200, seed=3)
    mapping = map_luts(aig, k=6)
    assert mapping.area <= aig.num_ands


def test_depth_not_worse_than_aig_depth(random_aig_factory):
    aig = random_aig_factory(8, 200, seed=4)
    mapping = map_luts(aig, k=6)
    assert 0 < mapping.depth <= aig.depth


def test_bigger_k_never_hurts_area_much():
    """LUT-6 mapping of an adder should use far fewer LUTs than LUT-2."""
    from repro.aig.compose import ripple_adder
    aig = Aig()
    a = aig.add_pis(8)
    b = aig.add_pis(8)
    total, carry = ripple_adder(aig, a, b)
    for s in total + [carry]:
        aig.add_po(s)
    small = map_luts(aig, k=2)
    large = map_luts(aig, k=6)
    assert large.area < small.area


def test_adder_maps_to_roughly_half_bit_per_lut6():
    """A ripple adder packs ~2 output bits per LUT-6 (known structure)."""
    from repro.aig.compose import ripple_adder
    aig = Aig()
    a = aig.add_pis(16)
    b = aig.add_pis(16)
    total, carry = ripple_adder(aig, a, b)
    for s in total + [carry]:
        aig.add_po(s)
    mapping = map_luts(aig, k=6)
    assert mapping.area <= 40  # 17 outputs, ≈2 bits/LUT plus slack


def test_constant_and_pi_outputs():
    aig = Aig()
    a = aig.add_pi()
    aig.add_po(a)
    aig.add_po(0)
    mapping = map_luts(aig)
    assert mapping.area == 0
    assert mapping.depth == 0
