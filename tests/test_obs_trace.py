"""Tests for the profile exporter (repro.obs.trace).

The round-trip the ISSUE pins down: trace a **real i2c flow** to JSONL,
convert it to Chrome trace-event and speedscope documents, and verify
both against their structural invariants (non-negative durations,
balanced + monotonic speedscope events).  Synthetic traces cover the
defensive re-nesting (worker ``record`` spans overhanging their parent)
and crash-truncated inputs.
"""

import json

import pytest

from tests.conftest import make_random_aig
from repro import obs
from repro.obs.trace import (
    check_chrome,
    check_speedscope,
    load_spans,
    main as trace_main,
    to_chrome,
    to_speedscope,
)
from repro.sbm.config import FlowConfig
from repro.sbm.flow import sbm_flow


@pytest.fixture(scope="module")
def i2c_trace(tmp_path_factory):
    """A real flow trace: i2c through one full SBM iteration."""
    from repro.bench.registry import get_benchmark
    path = str(tmp_path_factory.mktemp("trace") / "i2c.jsonl")
    aig = get_benchmark("i2c", scaled=True)
    obs.enable(jsonl_path=path)
    try:
        sbm_flow(aig, FlowConfig(iterations=1))
    finally:
        obs.disable()
    return path


class TestRealTraceRoundTrip:
    def test_loads_full_span_forest(self, i2c_trace):
        roots, skipped = load_spans(i2c_trace)
        assert skipped == 0
        assert len(roots) == 1            # one flow root
        flow = roots[0]
        assert flow.name == "flow"
        assert flow.wall_s > 0
        names = set()
        stack = list(flow.children)
        while stack:
            span = stack.pop()
            names.add(span.name)
            stack.extend(span.children)
        assert "mspf" in names

    def test_chrome_document_valid(self, i2c_trace):
        roots, _ = load_spans(i2c_trace)
        doc = to_chrome(roots)
        assert check_chrome(doc) == []
        events = doc["traceEvents"]
        with open(i2c_trace) as handle:
            starts = sum(1 for line in handle
                         if json.loads(line).get("ev") == "start")
        assert len(events) == starts      # one X event per traced span
        root = events[0]
        assert root["name"] == "flow" and root["ph"] == "X"
        assert all(e["dur"] >= 0 for e in events)
        # children nest inside the root in time
        t0, t1 = root["ts"], root["ts"] + root["dur"]
        for event in events[1:5]:
            assert event["ts"] >= t0 - 1e-3

    def test_speedscope_document_valid(self, i2c_trace):
        roots, _ = load_spans(i2c_trace)
        doc = to_speedscope(roots)
        assert check_speedscope(doc) == []
        profile = doc["profiles"][0]
        assert profile["type"] == "evented"
        assert len(profile["events"]) % 2 == 0
        assert profile["endValue"] >= roots[0].wall_s
        frame_names = {f["name"] for f in doc["shared"]["frames"]}
        assert "flow" in frame_names and "mspf" in frame_names

    def test_cli_converts_and_checks(self, i2c_trace, tmp_path, capsys):
        chrome = str(tmp_path / "chrome.json")
        speedscope = str(tmp_path / "profile.json")
        status = trace_main([i2c_trace, "--chrome", chrome,
                             "--speedscope", speedscope, "--check"])
        assert status == 0
        out = capsys.readouterr().out
        assert "check ok" in out
        with open(chrome) as handle:
            assert check_chrome(json.load(handle)) == []
        with open(speedscope) as handle:
            assert check_speedscope(json.load(handle)) == []


def _write_jsonl(path, records):
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


class TestDefensiveNesting:
    def test_worker_span_overhanging_parent(self, tmp_path):
        """A record() span measured in a worker can outlast its parent."""
        path = str(tmp_path / "overhang.jsonl")
        _write_jsonl(path, [
            {"ev": "start", "id": 0, "parent": None, "name": "stage",
             "kind": "stage", "t": 0.0},
            {"ev": "start", "id": 1, "parent": 0, "name": "window",
             "kind": "window", "t": 0.5},
            # worker wall time pushes the child end past the parent's
            {"ev": "end", "id": 1, "wall_s": 9.0, "cpu_s": 0.0,
             "attrs": {}, "events": []},
            {"ev": "end", "id": 0, "wall_s": 1.0, "cpu_s": 0.0,
             "attrs": {}, "events": []},
        ])
        roots, _ = load_spans(path)
        doc = to_speedscope(roots)
        assert check_speedscope(doc) == []

    def test_missing_end_record(self, tmp_path):
        path = str(tmp_path / "crash.jsonl")
        _write_jsonl(path, [
            {"ev": "start", "id": 0, "parent": None, "name": "flow",
             "kind": "flow", "t": 0.0},
            {"ev": "start", "id": 1, "parent": 0, "name": "mspf",
             "kind": "stage", "t": 0.1},
        ])
        roots, _ = load_spans(path)
        assert roots[0].wall_s == 0.0
        assert check_chrome(to_chrome(roots)) == []
        assert check_speedscope(to_speedscope(roots)) == []

    def test_truncated_trace_converts(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps(
                {"ev": "start", "id": 0, "parent": None, "name": "flow",
                 "kind": "flow", "t": 0.0}) + "\n")
            handle.write('{"ev": "end", "id": 0, "wall')   # torn
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            roots, skipped = load_spans(path)
        assert skipped == 1 and len(roots) == 1


class TestValidators:
    def test_check_chrome_flags_problems(self):
        assert check_chrome({"traceEvents": "nope"}) != []
        bad = {"traceEvents": [{"name": "x", "ph": "B", "ts": 0, "dur": -1}]}
        problems = check_chrome(bad)
        assert any("phase" in p for p in problems)
        assert any("negative" in p for p in problems)

    def test_check_speedscope_flags_problems(self):
        doc = {
            "shared": {"frames": [{"name": "a"}]},
            "profiles": [{"type": "evented", "startValue": 0.0,
                          "endValue": 1.0,
                          "events": [
                              {"type": "O", "frame": 0, "at": 0.5},
                              {"type": "C", "frame": 0, "at": 0.2},  # rewind
                          ]}],
        }
        problems = check_speedscope(doc)
        assert any("monotonic" in p for p in problems)
        doc["profiles"][0]["events"] = [{"type": "O", "frame": 0, "at": 0.1}]
        assert any("left open" in p
                   for p in check_speedscope(doc))


class TestCli:
    def test_usage_errors(self, capsys):
        assert trace_main([]) == 2
        assert trace_main(["a.jsonl"]) == 2             # no output selected
        assert trace_main(["--chrome", "o.json"]) == 2  # no input

    def test_unreadable_input(self, tmp_path):
        missing = str(tmp_path / "missing.jsonl")
        assert trace_main([missing, "--chrome",
                           str(tmp_path / "o.json")]) == 3

    def test_empty_trace_rejected(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        assert trace_main([path, "--chrome",
                           str(tmp_path / "o.json")]) == 3

    def test_synthetic_trace_small(self, tmp_path, capsys):
        path = str(tmp_path / "s.jsonl")
        aig = make_random_aig(6, 80, seed=2)
        obs.enable(jsonl_path=path)
        try:
            sbm_flow(aig, FlowConfig(iterations=1))
        finally:
            obs.disable()
        out = str(tmp_path / "out.json")
        assert trace_main([path, "--speedscope", out, "--check"]) == 0
        assert "speedscope profile" in capsys.readouterr().out
