"""Tests for the extension features: BDD reordering and truth-table MSPF.

Both are features the paper discusses but does not adopt (Sections III-C
and IV-C); the reproduction implements them so the paper's tradeoffs can be
measured.
"""

import random

import pytest

from repro.bdd.manager import BddManager
from repro.bdd.reorder import rebuild_with_order, shared_size, sift
from repro.opt.mspf_tt import tt_mspf_pass
from repro.sat.equivalence import check_equivalence
from repro.sbm.config import BooleanDifferenceConfig
from repro.tt.truthtable import TruthTable

from tests.test_bdd import build_from_table


class TestReorder:
    def test_rebuild_preserves_functions(self):
        rng = random.Random(0)
        for _ in range(20):
            n = rng.randint(2, 5)
            mgr = BddManager(n)
            t = TruthTable(rng.getrandbits(1 << n), n)
            root = build_from_table(mgr, t)
            order = list(range(n))
            rng.shuffle(order)
            new_mgr, new_roots = rebuild_with_order(mgr, [root], order)
            assert new_mgr.to_truth_bits(new_roots[0], n) == \
                t.permute(order).bits

    def test_rebuild_rejects_non_permutation(self):
        mgr = BddManager(3)
        with pytest.raises(ValueError):
            rebuild_with_order(mgr, [mgr.var(0)], [0, 0, 1])

    def test_sift_never_increases_size(self):
        rng = random.Random(1)
        for _ in range(10):
            n = rng.randint(2, 6)
            mgr = BddManager(n)
            roots = [build_from_table(mgr,
                                      TruthTable(rng.getrandbits(1 << n), n))
                     for _ in range(2)]
            before = shared_size(mgr, roots)
            new_mgr, new_roots, _order = sift(mgr, roots)
            assert shared_size(new_mgr, new_roots) <= before

    def test_sift_finds_interleaved_order(self):
        """x0·x3 + x1·x4 + x2·x5 is exponential interleaved, linear paired."""
        mgr = BddManager(6)
        f = mgr.or_multi([mgr.apply_and(mgr.var(i), mgr.var(i + 3))
                          for i in range(3)])
        before = shared_size(mgr, [f])
        new_mgr, roots, order = sift(mgr, [f], max_passes=2)
        after = shared_size(new_mgr, roots)
        assert after < before
        assert after == 6  # the optimal pairing

    def test_boolean_difference_with_reorder_sound(self, random_aig_factory):
        from repro.sbm.boolean_difference import boolean_difference_pass
        for seed in range(3):
            aig = random_aig_factory(10, 150, seed=seed)
            reference = aig.cleanup()
            boolean_difference_pass(aig,
                                    BooleanDifferenceConfig(reorder=True))
            aig.check()
            ok, _ = check_equivalence(reference, aig.cleanup())
            assert ok, seed


class TestTruthTableMspf:
    def test_classic_odc(self):
        from repro.aig.aig import Aig
        aig = Aig()
        a, b = aig.add_pis(2)
        aig.add_po(aig.add_or(aig.add_and(a, b), a))
        reference = aig.cleanup()
        stats = tt_mspf_pass(aig)
        assert stats.rewrites >= 1
        assert aig.cleanup().num_ands == 0
        ok, _ = check_equivalence(reference, aig.cleanup())
        assert ok

    def test_function_preserved_on_random(self, random_aig_factory):
        for seed in range(5):
            aig = random_aig_factory(10, 200, seed=seed)
            reference = aig.cleanup()
            tt_mspf_pass(aig)
            aig.check()
            ok, _ = check_equivalence(reference, aig.cleanup())
            assert ok, seed

    def test_width_limit_skips_wide_windows(self, random_aig_factory):
        aig = random_aig_factory(16, 150, seed=1)
        stats = tt_mspf_pass(aig, max_leaves=4)
        assert stats.windows_skipped_width > 0

    def test_bdd_version_reaches_wider_windows(self, random_aig_factory):
        """The Section IV-C claim: BDD MSPF 'works on larger sub-circuits
        than those considered in [1]' — with equal partitioning, the BDD
        engine processes windows the TT engine must skip."""
        from repro.partition.partitioner import PartitionConfig
        from repro.sbm.config import MspfConfig
        from repro.sbm.mspf import mspf_pass

        wide = PartitionConfig(max_levels=24, max_size=400, max_leaves=28)
        aig1 = random_aig_factory(20, 400, seed=2)
        tt_stats = tt_mspf_pass(aig1, max_leaves=12, partition=wide)
        aig2 = random_aig_factory(20, 400, seed=2)
        bdd_stats = mspf_pass(aig2, MspfConfig(partition=wide))
        assert tt_stats.windows_skipped_width > 0
        assert bdd_stats.nodes_processed > tt_stats.nodes_processed
