"""Tests for the experiment harnesses (Fig. 1, Tables I–III, runtime)."""

import pytest

from repro.experiments.fig1 import build_fig1_network, format_result, run_fig1
from repro.experiments.report import Row, format_table, improvement
from repro.experiments.runtime import format_results as fmt_runtime
from repro.experiments.runtime import run_monolithic
from repro.experiments.table1 import format_results as fmt_t1
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import format_results as fmt_t2
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import (
    PAPER_DELTAS,
    Table3Summary,
    format_summary,
    run_table3,
)
from repro.sbm.config import FlowConfig


class TestReport:
    def test_format_table(self):
        rows = [Row("bench1", {"a": 1, "b": None}),
                Row("bench2", {"a": 20, "b": 3.14159})]
        text = format_table("Title", ["a", "b"], rows)
        assert "Title" in text and "bench1" in text and "3.14" in text
        assert "-" in text  # None rendered as dash

    def test_improvement(self):
        assert improvement(100, 90) == pytest.approx(10.0)
        assert improvement(0, 5) is None


class TestFig1:
    def test_network_shape(self):
        aig = build_fig1_network()
        assert aig.num_pis == 5
        assert aig.num_pos == 2

    def test_reduction_and_verification(self):
        result = run_fig1()
        assert result.reduced
        assert result.verified
        assert result.stats.rewrites >= 1

    def test_format(self):
        text = format_result(run_fig1())
        assert "before rewrite" in text
        assert "yes" in text


class TestRuntime:
    def test_monolithic_runs(self):
        results = run_monolithic(benchmarks=("cavlc",), max_pairs=500)
        assert len(results) == 1
        r = results[0]
        assert r.pairs_tried > 0
        assert r.runtime_s > 0
        assert r.paper_runtime_s == 1.2
        assert "cavlc" in fmt_runtime(results)


class TestTable1:
    def test_small_subset(self):
        fast = FlowConfig(iterations=1)
        results = run_table1(benchmarks=["router"], flow_config=fast)
        assert len(results) == 1
        r = results[0]
        assert r.verified
        assert r.sbm_luts > 0
        text = fmt_t1(results)
        assert "router" in text and "paper" in text.lower()


class TestTable2:
    def test_small_subset(self):
        fast = FlowConfig(iterations=1)
        results = run_table2(benchmarks=["router"], flow_config=fast)
        r = results[0]
        assert r.verified
        assert r.sbm_size <= r.baseline_size
        assert r.paper_size == 96
        assert "router" in fmt_t2(results)


class TestTable3:
    def test_two_designs(self):
        summary = run_table3(num_designs=2,
                             sbm_config=FlowConfig(iterations=1))
        assert len(summary.results) == 2
        assert summary.all_verified()
        # area delta defined and the proposed flow is not worse on average
        delta = summary.average_delta("combinational_area")
        assert delta is not None and delta <= 1.0
        text = format_summary(summary)
        assert "Comb. Area" in text and "paper" in text

    def test_paper_deltas_recorded(self):
        assert PAPER_DELTAS["comb_area"] == -2.20
        assert PAPER_DELTAS["tns"] == -5.99
