"""Tests for the BDD-based MSPF engine (Section IV-C)."""

from repro.aig.aig import Aig
from repro.sat.equivalence import assert_equivalent, check_equivalence
from repro.sbm.config import MspfConfig
from repro.sbm.mspf import mspf_pass


def test_classic_odc_simplification():
    """out = (a&b) | a == a: the AND node is unobservable when a = 0."""
    aig = Aig()
    a, b = aig.add_pis(2)
    aig.add_po(aig.add_or(aig.add_and(a, b), a))
    reference = aig.cleanup()
    stats = mspf_pass(aig)
    aig.check()
    assert stats.rewrites >= 1
    assert aig.cleanup().num_ands == 0
    assert_equivalent(reference, aig.cleanup())


def test_mux_redundant_branch():
    """mux(s, f, f) never observes s: both branches collapse."""
    aig = Aig()
    s, a, b = aig.add_pis(3)
    f = aig.add_and(a, b)
    g = aig.add_and(b, a)  # strashes to f — build a different structure
    g2 = aig.add_or(aig.add_and(a, b), aig.add_and(a, aig.add_and(a, b)))
    out = aig.add_mux(s, f, g2)
    aig.add_po(out)
    reference = aig.cleanup()
    mspf_pass(aig)
    aig.check()
    assert_equivalent(reference, aig.cleanup())
    assert aig.cleanup().num_ands <= reference.num_ands


def test_function_preserved_on_random(random_aig_factory):
    for seed in range(6):
        aig = random_aig_factory(10, 200, seed=seed)
        reference = aig.cleanup()
        mspf_pass(aig)
        aig.check()
        ok, _ = check_equivalence(reference, aig.cleanup())
        assert ok, seed


def test_finds_gains_on_redundant_logic(random_aig_factory):
    total = 0
    for seed in range(4):
        aig = random_aig_factory(10, 200, seed=seed)
        stats = mspf_pass(aig)
        total += stats.gain
    assert total > 0


def test_memory_limit_bailout(random_aig_factory):
    aig = random_aig_factory(12, 250, seed=9)
    reference = aig.cleanup()
    stats = mspf_pass(aig, MspfConfig(bdd_node_limit=80))
    aig.check()
    assert_equivalent(reference, aig.cleanup())


def test_connectable_fanin_cap(random_aig_factory):
    aig = random_aig_factory(10, 150, seed=2)
    stats = mspf_pass(aig, MspfConfig(max_connectable_fanins=1))
    # cap respected: found count never exceeds nodes processed * cap... we
    # only check it ran and stayed sound
    assert stats.nodes_processed > 0


def test_roots_never_rewritten():
    """A window root is externally observable; MSPF must not touch it even
    when its local MSPF (w.r.t. inner roots) would be non-trivial."""
    aig = Aig()
    a, b = aig.add_pis(2)
    f = aig.add_and(a, b)
    aig.add_po(f)
    aig.add_po(f)  # doubly referenced root
    reference = aig.cleanup()
    mspf_pass(aig)
    assert_equivalent(reference, aig.cleanup())


def test_stats_shape(random_aig_factory):
    aig = random_aig_factory(8, 120, seed=4)
    stats = mspf_pass(aig)
    assert stats.partitions >= 1
    assert stats.mspf_nonzero <= stats.nodes_processed
