"""Tests for the Verilog writer and the flow's level discipline."""

import re


from repro.asic.celllib import CellLibrary
from repro.asic.techmap import tech_map
from repro.asic.verilog import (
    _form_to_verilog,
    _verilog_expression,
    write_verilog,
    write_verilog_string,
)
from repro.sbm.config import FlowConfig
from repro.sbm.flow import sbm_flow


class TestVerilogWriter:
    def test_self_contained_module_structure(self, small_adder):
        netlist = tech_map(small_adder)
        text = write_verilog_string(netlist)
        # library cells emitted once each
        assert text.count("module INV") == 1
        assert "module add4" in text
        assert text.count("endmodule") >= 2
        # all instances reference emitted cells
        instantiated = set(re.findall(r"^  (\w+) g?\w+ \(", text, re.M))
        library_cells = {c.name for c in CellLibrary().cells}
        assert instantiated <= library_cells

    def test_without_library(self, small_adder):
        netlist = tech_map(small_adder)
        text = write_verilog_string(netlist, include_library=False)
        assert "module INV" not in text
        assert "module add4" in text

    def test_port_lists_complete(self, small_adder):
        netlist = tech_map(small_adder)
        text = write_verilog_string(netlist, include_library=False)
        for name in netlist.inputs:
            assert f"input {name};" in text
        for port, _net in netlist.outputs:
            assert f"output {port};" in text

    def test_file_output(self, tmp_path, small_adder):
        netlist = tech_map(small_adder)
        path = str(tmp_path / "adder.v")
        write_verilog(netlist, path)
        with open(path) as handle:
            assert "endmodule" in handle.read()

    def test_cell_expressions_match_functions(self):
        """The behavioural expression of every cell must encode its table."""
        from repro.tt.truthtable import TruthTable
        for cell in CellLibrary().cells:
            expression = _verilog_expression(cell)
            names = [chr(ord("a") + i) for i in range(cell.num_inputs)]
            table = TruthTable(cell.table, cell.num_inputs)
            for row in range(1 << cell.num_inputs):
                env = {name: bool((row >> i) & 1)
                       for i, name in enumerate(names)}
                py_expr = (expression.replace("~", " not ")
                           .replace("&", " and ").replace("|", " or ")
                           .replace("1'b1", "True").replace("1'b0", "False"))
                assert bool(eval(py_expr, {}, env)) == bool(table.value(row)), \
                    (cell.name, expression)

    def test_sanitization(self):
        from repro.asic.verilog import _sanitize
        assert _sanitize("net[3]") == "net_3_"
        assert _sanitize("3x") == "n3x"
        assert _sanitize("") == "unnamed"


class TestLevelDiscipline:
    def test_depth_budget_respected(self, random_aig_factory):
        from repro.sat.equivalence import assert_equivalent
        aig = random_aig_factory(10, 200, seed=5)
        optimized, stats = sbm_flow(
            aig, FlowConfig(iterations=1, max_depth_growth=1.0))
        assert optimized.depth <= max(1, aig.depth)
        assert_equivalent(aig, optimized)

    def test_no_budget_means_no_rollbacks(self, random_aig_factory):
        aig = random_aig_factory(8, 120, seed=6)
        _optimized, stats = sbm_flow(aig, FlowConfig(iterations=1))
        assert not any("rolled_back" in r.name for r in stats.records)
