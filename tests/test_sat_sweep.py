"""Tests for SAT sweeping and redundancy removal."""

from repro.aig.aig import Aig, lit_not
from repro.aig.simulate import po_tables
from repro.sat.redundancy import remove_redundancies
from repro.sat.sweep import sat_sweep


class TestSatSweep:
    def test_merges_functional_duplicates(self):
        aig = Aig()
        a, b, c = aig.add_pis(3)
        f1 = aig.add_or(aig.add_and(a, b), aig.add_and(a, c))
        f2 = aig.add_and(a, aig.add_or(b, c))
        aig.add_po(f1)
        aig.add_po(f2)
        before_tables = po_tables(aig)
        before_size = aig.num_ands
        merges = sat_sweep(aig)
        aig.check()
        assert merges >= 1
        assert po_tables(aig) == before_tables
        assert aig.cleanup().num_ands < before_size

    def test_merges_antivalent_nodes(self):
        aig = Aig()
        a, b = aig.add_pis(2)
        f = aig.add_and(a, b)
        # !(a&b) built as a structurally distinct sum of minterms
        g = aig.add_or_multi([
            aig.add_and(lit_not(a), lit_not(b)),
            aig.add_and(lit_not(a), b),
            aig.add_and(a, lit_not(b)),
        ])
        aig.add_po(f)
        aig.add_po(g)
        assert aig.num_ands > 2  # genuinely different structure
        tables = po_tables(aig)
        merges = sat_sweep(aig)
        assert merges >= 1
        assert po_tables(aig) == tables
        assert aig.cleanup().num_ands == 1

    def test_max_proofs_cap(self, random_aig_factory):
        aig = random_aig_factory(8, 150, seed=0)
        tables = po_tables(aig)
        sat_sweep(aig, max_proofs=3)
        assert po_tables(aig) == tables

    def test_preserves_function_on_random(self, random_aig_factory):
        for seed in range(4):
            aig = random_aig_factory(8, 120, seed=seed)
            tables = po_tables(aig)
            sat_sweep(aig)
            aig.check()
            assert po_tables(aig) == tables

    def test_no_pis_is_noop(self):
        aig = Aig()
        aig.add_po(1)
        assert sat_sweep(aig) == 0


class TestRedundancyRemoval:
    def test_removes_classic_redundancy(self):
        # f = a & (a | b): the (a | b) edge is stuck-at-1 redundant
        aig = Aig()
        a, b = aig.add_pis(2)
        aig.add_po(aig.add_and(a, aig.add_or(a, b)))
        tables = po_tables(aig)
        removed = remove_redundancies(aig)
        assert removed >= 1
        assert po_tables(aig) == tables
        assert aig.num_ands == 0  # collapses to just `a`

    def test_irredundant_network_untouched(self, small_adder):
        tables = po_tables(small_adder)
        size = small_adder.num_ands
        removed = remove_redundancies(small_adder, max_checks=40)
        assert po_tables(small_adder) == tables
        # the adder is irredundant; nothing removable
        assert removed == 0
        assert small_adder.num_ands == size

    def test_function_preserved_on_random(self, random_aig_factory):
        aig = random_aig_factory(6, 60, seed=2)
        tables = po_tables(aig)
        remove_redundancies(aig, max_checks=30)
        assert po_tables(aig) == tables
