"""Tests for the telemetry history store (repro.obs.history).

Pins down the ISSUE's acceptance criteria: ingest idempotence (re-ingest
of the same report is a counted no-op), the regression detector firing on
a synthetic 2× slowdown while staying quiet on ±10 % noise, node-count
regressions at both job and stage grain, the CLI exit-code contract, and
the ``run_campaign(history_db=...)`` auto-ingest hook.
"""

import io
import json
import os

import pytest

from tests.conftest import make_random_aig
from repro.obs.history import (
    HistoryStore,
    detect_git_rev,
    ingest_key_of,
    main as history_main,
    wrap_campaign_report,
)
from repro.obs.report import main as report_main, validate_report


def campaign_doc(runtime=1.0, nodes=900, suite="suite", benchmark="i2c",
                 outcome="miss", stage_s=None, tag=""):
    """A minimal, valid ``campaign`` report section for one job."""
    stage_s = runtime / 2 if stage_s is None else stage_s
    return {
        "suite": suite, "cache_dir": None, "jobs": 1,
        "hits": 1 if outcome == "hit" else 0,
        "misses": 1 if outcome == "miss" else 0,
        "deduped": 0, "uncached": 1 if outcome == "uncached" else 0,
        "errors": 0, "corrupt_entries": 0, "stolen_windows": 0,
        "pool_rebuilds": 0, "pool_restarts": 0,
        "elapsed_s": runtime, "cpu_s": runtime, "worker_wall_s": 0.0,
        "parallel": None,
        "jobs_detail": [{
            "name": benchmark, "benchmark": benchmark, "outcome": outcome,
            "key": f"key-{tag}", "wall_s": runtime,
            "flow_runtime_s": 0.0 if outcome == "hit" else runtime,
            "nodes_before": 1000, "nodes_after": nodes,
            "stolen_windows": 0, "pool_restarts": 0, "faults": 0,
            "engine_gain": {}, "error": None,
            "stages": [
                {"name": "mspf", "size": nodes + 10, "elapsed_s": stage_s},
                {"name": "mfs2", "size": nodes, "elapsed_s": stage_s},
            ],
        }],
    }


def make_report(**kwargs):
    doc = wrap_campaign_report(campaign_doc(**kwargs))
    validate_report(doc)   # the wrapper must stay schema-valid
    return doc


@pytest.fixture
def db(tmp_path):
    return str(tmp_path / "history.db")


class TestIngest:
    def test_ingest_and_idempotence(self, db):
        doc = make_report(tag="a")
        with HistoryStore(db) as store:
            first = store.ingest(doc)
            assert first == 1
            assert store.ingest(doc) is None      # exact re-ingest: no-op
            assert store.run_count() == 1
            # a different document ingests as a new run
            assert store.ingest(make_report(runtime=1.01, tag="b")) == 2
            assert store.run_count() == 2

    def test_ingest_key_is_content_hash(self):
        a, b = make_report(tag="x"), make_report(tag="x")
        assert ingest_key_of(a) == ingest_key_of(b)
        assert ingest_key_of(a) != ingest_key_of(make_report(tag="y"))

    def test_rows_materialized(self, db):
        with HistoryStore(db) as store:
            store.ingest(make_report(), git_rev="abc1234")
            run = store.runs()[0]
            assert run["suite"] == "suite"
            assert run["git_rev"] == "abc1234"
            assert run["code_version"]            # CODE_VERSION recorded
            jobs = store.conn.execute("SELECT COUNT(*) FROM jobs") \
                .fetchone()[0]
            stages = store.conn.execute("SELECT COUNT(*) FROM stages") \
                .fetchone()[0]
            assert (jobs, stages) == (1, 2)

    def test_invalid_report_rejected(self, db):
        from repro.obs.report import ReportSchemaError
        with HistoryStore(db) as store:
            with pytest.raises(ReportSchemaError):
                store.ingest({"schema": "nope"})
            assert store.run_count() == 0


class TestRegress:
    def _seed(self, store, runtimes, nodes=900):
        for i, runtime in enumerate(runtimes):
            store.ingest(make_report(runtime=runtime, nodes=nodes,
                                     tag=f"seed{i}"))

    def test_fires_on_2x_slowdown(self, db):
        with HistoryStore(db) as store:
            self._seed(store, [1.0, 1.05, 0.95, 1.0])
            store.ingest(make_report(runtime=2.0, tag="slow"))
            findings = store.regress()
        kinds = {f.kind for f in findings}
        assert "job_time" in kinds and "stage_time" in kinds
        worst = findings[0]
        assert worst.ratio == pytest.approx(2.0, rel=0.15)
        assert worst.benchmark == "i2c"
        assert "vs median" in worst.describe()

    def test_quiet_on_noise(self, db):
        with HistoryStore(db) as store:
            self._seed(store, [1.0, 1.1, 0.9, 1.05])
            store.ingest(make_report(runtime=1.1, tag="noisy"))   # +10 %
            assert store.regress() == []

    def test_absolute_floor_mutes_micro_stages(self, db):
        # 3x ratio but only 30 ms over baseline: below the 50 ms floor
        with HistoryStore(db) as store:
            self._seed(store, [0.015, 0.015, 0.015])
            store.ingest(make_report(runtime=0.045, tag="tiny"))
            assert [f for f in store.regress()
                    if f.kind.endswith("_time")] == []

    def test_node_regression_at_both_grains(self, db):
        with HistoryStore(db) as store:
            self._seed(store, [1.0, 1.0, 1.0], nodes=900)
            store.ingest(make_report(runtime=1.0, nodes=990, tag="grew"))
            findings = store.regress()
        kinds = {f.kind for f in findings}
        assert "job_nodes" in kinds and "stage_nodes" in kinds

    def test_warm_outcomes_excluded_from_time_checks(self, db):
        with HistoryStore(db) as store:
            self._seed(store, [1.0, 1.0, 1.0])
            # a hit reports the cold run's stats; its wall time is not ours
            store.ingest(make_report(runtime=9.0, outcome="hit",
                                     tag="warm"))
            findings = store.regress()
        assert [f for f in findings if f.kind.endswith("_time")] == []

    def test_no_history_is_quiet(self, db):
        with HistoryStore(db) as store:
            assert store.regress() == []
            store.ingest(make_report())
            assert store.regress() == []          # nothing prior to compare


class TestCli:
    def test_ingest_trend_regress_cycle(self, db, tmp_path, capsys):
        paths = []
        for i, runtime in enumerate([1.0, 1.02, 0.98]):
            path = str(tmp_path / f"r{i}.json")
            with open(path, "w") as handle:
                json.dump(make_report(runtime=runtime, tag=str(i)), handle)
            paths.append(path)
        assert history_main(["ingest", db, *paths]) == 0
        out = capsys.readouterr().out
        assert "3 ingested" in out
        # duplicates are counted, not fatal
        assert history_main(["ingest", db, paths[0]]) == 0
        assert "1 duplicate" in capsys.readouterr().out
        assert history_main(["trend", db, "--benchmark", "i2c"]) == 0
        assert "i2c" in capsys.readouterr().out
        assert history_main(["regress", db]) == 0
        assert "quiet" in capsys.readouterr().out
        # inject the slowdown: the gate exits 1
        slow = str(tmp_path / "slow.json")
        with open(slow, "w") as handle:
            json.dump(make_report(runtime=2.2, tag="slow"), handle)
        assert history_main(["ingest", db, slow]) == 0
        assert history_main(["regress", db]) == 1
        assert "regression(s) confirmed" in capsys.readouterr().out

    def test_stage_trend(self, db, tmp_path, capsys):
        for i in range(2):
            path = str(tmp_path / f"t{i}.json")
            with open(path, "w") as handle:
                json.dump(make_report(nodes=900 - 10 * i, tag=f"t{i}"),
                          handle)
            history_main(["ingest", db, path])
        capsys.readouterr()
        assert history_main(["trend", db, "--stage", "mfs2"]) == 0
        out = capsys.readouterr().out
        assert "mfs2" in out and "-10" in out

    def test_usage_and_error_exits(self, db, tmp_path, capsys):
        assert history_main([]) == 2
        assert history_main(["frobnicate", db]) == 2
        assert history_main(["ingest", db]) == 2
        assert history_main(["ingest", db,
                             str(tmp_path / "missing.json")]) == 3
        bad = str(tmp_path / "bad.json")
        with open(bad, "w") as handle:
            json.dump({"schema": "wrong"}, handle)
        assert history_main(["ingest", db, bad]) == 1
        assert "SCHEMA ERROR" in capsys.readouterr().err

    def test_ingest_from_stdin(self, db, monkeypatch, capsys):
        doc = make_report(tag="stdin")
        monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(doc)))
        assert history_main(["ingest", db, "-"]) == 0
        assert "ingested as run #1" in capsys.readouterr().out

    def test_regress_insufficient_history(self, db, tmp_path, capsys):
        path = str(tmp_path / "only.json")
        with open(path, "w") as handle:
            json.dump(make_report(), handle)
        history_main(["ingest", db, path])
        capsys.readouterr()
        assert history_main(["regress", db]) == 0
        assert "insufficient history" in capsys.readouterr().out


class TestReportCliSatellites:
    def test_report_validator_reads_stdin(self, monkeypatch, capsys):
        doc = make_report(tag="pipe")
        monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(doc)))
        assert report_main(["-"]) == 0
        assert "valid repro.obs/run-report v3" in capsys.readouterr().out

    def test_report_validator_unreadable_exits_3(self, tmp_path):
        assert report_main([str(tmp_path / "missing.json")]) == 3
        undecodable = str(tmp_path / "torn.json")
        with open(undecodable, "w") as handle:
            handle.write('{"schema": "repro')
        assert report_main([undecodable]) == 3

    def test_optional_code_and_stages_validate(self):
        doc = make_report(tag="optional")
        assert doc["code"]                         # build carries CODE_VERSION
        validate_report(doc)
        from repro.obs.report import ReportSchemaError
        broken = json.loads(json.dumps(doc))
        broken["code"] = 7
        with pytest.raises(ReportSchemaError):
            validate_report(broken)
        broken = json.loads(json.dumps(doc))
        broken["campaign"][0]["jobs_detail"][0]["stages"] = [{"name": 3}]
        with pytest.raises(ReportSchemaError):
            validate_report(broken)


class TestCampaignIntegration:
    def test_run_campaign_auto_ingests(self, tmp_path):
        from repro.campaign.runner import CampaignJob, run_campaign
        from repro.sbm.config import FlowConfig
        db = str(tmp_path / "auto.db")
        aig = make_random_aig(8, 150, seed=13)
        job = CampaignJob(name="tiny", benchmark="adhoc", network=aig,
                          config=FlowConfig(iterations=1))
        run_campaign([job], suite="auto-test", history_db=db)
        assert os.path.exists(db)
        with HistoryStore(db) as store:
            assert store.run_count() == 1
            run = store.runs()[0]
            assert run["suite"] == "auto-test"
            bench = store.conn.execute(
                "SELECT benchmark, outcome FROM jobs").fetchone()
            assert bench == ("adhoc", "uncached")
            stage_rows = store.conn.execute(
                "SELECT COUNT(*) FROM stages").fetchone()[0]
            assert stage_rows >= 5      # per-stage history materialized

    def test_history_failure_never_sinks_campaign(self, tmp_path, capsys):
        from repro.campaign.runner import CampaignJob, run_campaign
        from repro.sbm.config import FlowConfig
        # a directory path is not a usable sqlite file
        bad_db = str(tmp_path)
        aig = make_random_aig(8, 120, seed=17)
        job = CampaignJob(name="tiny", benchmark="adhoc", network=aig,
                          config=FlowConfig(iterations=1))
        report = run_campaign([job], history_db=bad_db)
        assert report.errors == 0
        assert "history ingest failed" in capsys.readouterr().err


def test_detect_git_rev_in_repo():
    rev = detect_git_rev(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    # the repo under test is a git checkout; tolerate None elsewhere
    assert rev is None or (isinstance(rev, str) and len(rev) >= 6)
