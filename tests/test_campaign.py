"""Tests for the campaign orchestrator and its result cache.

The contracts under test:

* **Key stability** — the cache key is a pure function of (network,
  semantic config, code version): stable across processes, insensitive to
  execution-side knobs (``jobs``, ``checkpoint_dir``, ``pool``), and
  different whenever a semantic knob differs.
* **Warm == cold** — a cache hit decodes to a network bit-identical to
  what the cold run produced, on real EPFL benchmarks.
* **Crash safety** — corrupt or truncated entries read as misses (and are
  counted), never as exceptions or wrong networks.
* **Aggregation** — campaign-level parallel telemetry sums every job's
  passes instead of keeping only the last flow's report.
* **Chaos** — a fault seed flows through the campaign path and marks the
  affected jobs uncacheable.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro import obs
from repro.bench.registry import get_benchmark
from repro.campaign import (
    CampaignJob,
    ResultCache,
    cache_context,
    cached_sbm_flow,
    canonical_flow_config,
    flow_cache_key,
    jobs_from_benchmarks,
    load_suite,
    run_campaign,
)
from repro.parallel.stats import ParallelReport, WindowRecord, aggregate_reports
from repro.parallel.window_io import CompactAig
from repro.sbm.config import FlowConfig

from tests.conftest import make_random_aig


def structure(aig):
    """Canonical structural tuple for bit-identity comparison."""
    compact = CompactAig.from_aig(aig)
    return compact.num_pis, tuple(compact.gates), tuple(compact.outputs)


# -- cache keys ---------------------------------------------------------------

class TestCacheKey:
    def test_stable_within_process(self):
        aig = get_benchmark("router")
        assert (flow_cache_key(aig, FlowConfig(iterations=1))
                == flow_cache_key(get_benchmark("router"),
                                  FlowConfig(iterations=1)))

    def test_stable_across_processes(self):
        aig = get_benchmark("router")
        here = flow_cache_key(aig, FlowConfig(iterations=1))
        code = (
            "from repro.bench.registry import get_benchmark\n"
            "from repro.campaign import flow_cache_key\n"
            "from repro.sbm.config import FlowConfig\n"
            "print(flow_cache_key(get_benchmark('router'),"
            " FlowConfig(iterations=1)))\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        env["PYTHONHASHSEED"] = "12345"  # keys must not depend on hashing
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == here

    def test_execution_knobs_do_not_change_the_key(self, tmp_path):
        aig = get_benchmark("router")
        base = flow_cache_key(aig, FlowConfig(iterations=1))
        assert flow_cache_key(aig, FlowConfig(iterations=1, jobs=4)) == base
        assert flow_cache_key(aig, FlowConfig(
            iterations=1, checkpoint_dir=str(tmp_path))) == base

    def test_semantic_knobs_change_the_key(self):
        aig = get_benchmark("router")
        base = flow_cache_key(aig, FlowConfig(iterations=1))
        assert flow_cache_key(aig, FlowConfig(iterations=2)) != base
        assert flow_cache_key(aig, FlowConfig(
            iterations=1, enable_sat_sweep=False)) != base
        deeper = FlowConfig(iterations=1)
        deeper.kernel.kernel_rounds += 1
        assert flow_cache_key(aig, deeper) != base

    def test_network_structure_changes_the_key(self):
        a = make_random_aig(6, 40, seed=1)
        b = make_random_aig(6, 40, seed=2)
        config = FlowConfig(iterations=1)
        assert flow_cache_key(a, config) != flow_cache_key(b, config)

    def test_network_name_does_not_change_the_key(self):
        a = get_benchmark("router")
        b = get_benchmark("router")
        b.name = "renamed"
        config = FlowConfig(iterations=1)
        assert flow_cache_key(a, config) == flow_cache_key(b, config)

    def test_timing_and_chaos_are_uncacheable(self):
        from repro.guard.chaos import FaultPlan
        aig = get_benchmark("router")
        assert canonical_flow_config(FlowConfig(flow_timeout_s=10.0)) is None
        assert canonical_flow_config(
            FlowConfig(window_timeout_s=1.0)) is None
        assert flow_cache_key(aig, FlowConfig(chaos=FaultPlan(seed=7))) is None

    def test_simresub_knobs_are_semantic(self):
        # The fifth engine's config travels in the cache key: flipping the
        # stage off or changing any CEGAR knob must produce a new key.
        aig = get_benchmark("router")
        base = flow_cache_key(aig, FlowConfig(iterations=1))
        assert flow_cache_key(aig, FlowConfig(
            iterations=1, enable_simresub=False)) != base
        for change in (dict(pattern_words=8), dict(max_divisors=16),
                       dict(max_pair_checks=100), dict(seed=42),
                       dict(sat_conflict_budget=10)):
            tweaked = FlowConfig(iterations=1)
            tweaked.simresub = dataclasses.replace(tweaked.simresub, **change)
            assert flow_cache_key(aig, tweaked) != base, change
        semantic = canonical_flow_config(FlowConfig(iterations=1))
        assert semantic is not None and "simresub" in semantic

    def test_code_version_salts_the_key(self, monkeypatch):
        from repro import hotpath
        aig = get_benchmark("router")
        base = flow_cache_key(aig, FlowConfig(iterations=1))
        monkeypatch.setattr(hotpath, "CODE_VERSION", "sbm-flow/next")
        assert flow_cache_key(aig, FlowConfig(iterations=1)) != base


# -- the on-disk cache --------------------------------------------------------

class TestResultCache:
    def _store_one(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        aig = make_random_aig(6, 60, seed=11)
        result, stats, hit, key = cached_sbm_flow(
            aig, FlowConfig(iterations=1), cache)
        assert not hit and key is not None
        return cache, aig, result, key

    def test_roundtrip_is_bit_identical(self, tmp_path):
        cache, aig, cold, key = self._store_one(tmp_path)
        entry = cache.lookup(key)
        assert entry is not None
        assert structure(entry.network) == structure(cold)
        assert entry.nodes_after == cold.num_ands

    def test_corrupt_entry_is_a_counted_miss(self, tmp_path):
        cache, aig, _cold, key = self._store_one(tmp_path)
        with open(cache.path(key), "w", encoding="utf-8") as handle:
            handle.write("{ this is not json")
        assert cache.lookup(key) is None
        assert cache.corrupt == 1
        assert not os.path.exists(cache.path(key))  # self-healed
        # The next cached run recomputes and re-commits.
        result, _stats, hit, _key = cached_sbm_flow(
            aig, FlowConfig(iterations=1), cache)
        assert not hit and cache.lookup(key) is not None

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache, _aig, _cold, key = self._store_one(tmp_path)
        raw = open(cache.path(key), encoding="utf-8").read()
        with open(cache.path(key), "w", encoding="utf-8") as handle:
            handle.write(raw[:len(raw) // 2])
        assert cache.lookup(key) is None
        assert cache.corrupt == 1

    def test_wrong_key_slot_is_a_miss(self, tmp_path):
        # A valid entry copied under another key must not hit: the embedded
        # key is re-checked on decode.
        cache, _aig, _cold, key = self._store_one(tmp_path)
        other = "0" * 64
        os.makedirs(os.path.dirname(cache.path(other)), exist_ok=True)
        raw = open(cache.path(key), encoding="utf-8").read()
        with open(cache.path(other), "w", encoding="utf-8") as handle:
            handle.write(raw)
        assert cache.lookup(other) is None

    def test_store_failure_degrades_to_uncacheable(self, tmp_path,
                                                   monkeypatch):
        # A full disk (or revoked permission) mid-campaign must not sink
        # the run: the result stays usable, the entry stays cold, every
        # refusal is counted, and exactly one warning is emitted.
        import warnings
        from repro.campaign import cache as cache_mod
        cache = ResultCache(str(tmp_path / "cache"))
        aig = make_random_aig(6, 60, seed=11)

        def full_disk(path, text):
            raise OSError(28, "No space left on device")

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with monkeypatch.context() as patched:
                patched.setattr(cache_mod, "atomic_write_text", full_disk)
                result, _stats, hit, key = cached_sbm_flow(
                    aig, FlowConfig(iterations=1), cache)
                _r2, _s2, hit2, _k2 = cached_sbm_flow(
                    aig, FlowConfig(iterations=1), cache)
        assert not hit and not hit2
        assert result.num_ands > 0              # the flow result survived
        assert cache.store_failures == 2
        assert cache.stores == 0
        assert cache.lookup(key) is None        # nothing half-written
        warned = [w for w in caught
                  if issubclass(w.category, RuntimeWarning)]
        assert len(warned) == 1                 # once per cache, not per job
        assert "continuing uncached" in str(warned[0].message)
        # The filesystem recovers: the very next store commits normally.
        _r3, _s3, hit3, _k3 = cached_sbm_flow(
            aig, FlowConfig(iterations=1), cache)
        assert not hit3 and cache.stores == 1
        assert cache.lookup(key) is not None

    def test_stale_code_version_is_a_miss(self, tmp_path, monkeypatch):
        from repro import hotpath
        cache, _aig, _cold, key = self._store_one(tmp_path)
        monkeypatch.setattr(hotpath, "CODE_VERSION", "sbm-flow/next")
        assert cache.lookup(key) is None

    def test_cache_context_routes_deep_call_sites(self, tmp_path):
        aig = make_random_aig(6, 50, seed=13)
        config = FlowConfig(iterations=1)
        with cache_context(str(tmp_path / "cache")) as cache:
            cold, _s, hit, _k = cached_sbm_flow(aig, config)
            assert not hit and cache.stores == 1
            warm, _s, hit, _k = cached_sbm_flow(aig, config)
            assert hit
        assert structure(cold) == structure(warm)
        # Outside the context the cache is inactive again.
        _result, _s, hit, key = cached_sbm_flow(aig, config)
        assert not hit and key is None


# -- the campaign runner ------------------------------------------------------

BENCHES = ["router", "i2c"]  # two real EPFL benchmarks


@pytest.fixture(scope="module")
def cold_campaign(tmp_path_factory):
    """One shared cold campaign over two EPFL benchmarks (expensive)."""
    cache_dir = str(tmp_path_factory.mktemp("campaign_cache"))
    report = run_campaign(
        jobs_from_benchmarks(BENCHES, config=FlowConfig(iterations=1)),
        cache_dir=cache_dir, workers=1, suite="test-cold")
    return cache_dir, report


class TestCampaign:
    def test_cold_run_misses_and_commits(self, cold_campaign):
        cache_dir, cold = cold_campaign
        assert cold.misses == len(BENCHES) and cold.hits == 0
        assert cold.errors == 0
        assert len(ResultCache(cache_dir)) == len(BENCHES)

    def test_warm_equals_cold_bit_identical(self, cold_campaign):
        cache_dir, cold = cold_campaign
        warm = run_campaign(
            jobs_from_benchmarks(BENCHES, config=FlowConfig(iterations=1)),
            cache_dir=cache_dir, workers=1, suite="test-warm")
        assert warm.hits == len(BENCHES) and warm.misses == 0
        for name in BENCHES:
            assert (structure(warm.result(name).network)
                    == structure(cold.result(name).network)), name

    def test_partial_invalidation_recomputes_exactly_the_dropped_job(
            self, cold_campaign):
        cache_dir, cold = cold_campaign
        dropped = BENCHES[0]
        key = flow_cache_key(get_benchmark(dropped), FlowConfig(iterations=1))
        os.unlink(ResultCache(cache_dir).path(key))
        partial = run_campaign(
            jobs_from_benchmarks(BENCHES, config=FlowConfig(iterations=1)),
            cache_dir=cache_dir, workers=1, suite="test-partial")
        outcomes = {row.name: row.outcome for row in partial.results}
        assert outcomes[dropped] == "miss"
        assert all(v == "hit" for k, v in outcomes.items() if k != dropped)
        for name in BENCHES:
            assert (structure(partial.result(name).network)
                    == structure(cold.result(name).network)), name

    def test_within_campaign_dedup(self, tmp_path):
        config = FlowConfig(iterations=1)
        jobs = [CampaignJob(name="a", benchmark="router", config=config),
                CampaignJob(name="b", benchmark="router", config=config)]
        report = run_campaign(jobs, cache_dir=str(tmp_path / "c"), workers=1)
        assert report.deduped == 1 and report.misses == 1
        assert (structure(report.result("a").network)
                == structure(report.result("b").network))

    def test_duplicate_names_rejected(self):
        config = FlowConfig(iterations=1)
        jobs = [CampaignJob(name="x", benchmark="router", config=config),
                CampaignJob(name="x", benchmark="i2c", config=config)]
        with pytest.raises(ValueError, match="duplicate"):
            run_campaign(jobs, workers=1)

    def test_failing_job_does_not_sink_the_campaign(self, tmp_path):
        config = FlowConfig(iterations=1)
        jobs = [CampaignJob(name="bad", benchmark="no-such-benchmark",
                            config=config),
                CampaignJob(name="ok", benchmark="router", config=config)]
        report = run_campaign(jobs, cache_dir=str(tmp_path / "c"), workers=1)
        assert report.errors == 1
        assert report.result("bad").outcome == "error"
        assert report.result("bad").error is not None
        assert report.result("ok").outcome == "miss"

    def test_chaos_seed_through_campaign_is_uncacheable_and_correct(
            self, tmp_path):
        from repro.guard.chaos import FaultPlan
        from repro.sat.equivalence import check_equivalence
        config = FlowConfig(iterations=1, chaos=FaultPlan(seed=7),
                            verify_each_step=True)
        jobs = [CampaignJob(name="router", benchmark="router", config=config)]
        report = run_campaign(jobs, cache_dir=str(tmp_path / "c"), workers=1)
        row = report.result("router")
        assert row.outcome == "uncached" and row.key is None
        assert len(ResultCache(str(tmp_path / "c"))) == 0
        ok, _cex = check_equivalence(get_benchmark("router"), row.network)
        assert ok

    def test_concurrent_threads_match_serial(self, tmp_path):
        # Determinism across the execution axis: a 2-thread shared-pool
        # campaign produces the same networks as the serial inline path.
        names = ["router", "i2c"]
        serial = run_campaign(
            jobs_from_benchmarks(names, config=FlowConfig(iterations=1)),
            cache_dir=None, workers=1, suite="serial")
        pooled = run_campaign(
            jobs_from_benchmarks(names, config=FlowConfig(iterations=1)),
            cache_dir=None, workers=2, threads=2, suite="pooled")
        for name in names:
            assert (structure(serial.result(name).network)
                    == structure(pooled.result(name).network)), name


# -- telemetry aggregation ----------------------------------------------------

def _report(engine, elapsed, useful, restarts):
    rep = ParallelReport(engine=engine, jobs=2, elapsed_s=elapsed,
                         pool_restarts=restarts)
    rep.records.append(WindowRecord(index=0, engine=engine, size=10,
                                    leaves=4, wall_s=useful, applied=True,
                                    gain=1))
    return rep


class TestAggregation:
    def test_sums_across_all_reports_not_just_the_last(self):
        # The historical pitfall: batch telemetry kept only the last flow's
        # report.  The aggregate must sum every pass.
        reports = [_report("kernel", 2.0, 4.0, 1),
                   _report("mspf", 1.0, 1.0, 0),
                   _report("bdiff", 1.0, 1.0, 2)]
        agg = aggregate_reports(reports)
        assert agg["passes"] == 3
        assert agg["pool_restarts"] == 3          # not the last report's 2
        assert agg["elapsed_s"] == pytest.approx(4.0)
        assert agg["useful_worker_wall_s"] == pytest.approx(6.0)
        assert agg["speedup"] == pytest.approx(6.0 / 4.0)  # duration-weighted
        assert agg["engines"] == {"bdiff": 1, "kernel": 1, "mspf": 1}

    def test_empty_input_is_safe(self):
        agg = aggregate_reports([])
        assert agg["passes"] == 0 and agg["speedup"] == 1.0
        assert agg["by_engine"] == {}

    def test_by_engine_attributes_gain_per_engine(self):
        reports = [_report("kernel", 2.0, 4.0, 1),
                   _report("kernel", 1.0, 2.0, 0),
                   _report("simresub", 1.0, 1.0, 0)]
        agg = aggregate_reports(reports)
        assert set(agg["by_engine"]) == {"kernel", "simresub"}
        kernel = agg["by_engine"]["kernel"]
        assert kernel["passes"] == 2 and kernel["total_gain"] == 2
        assert kernel["num_windows"] == 2 and kernel["num_applied"] == 2
        assert kernel["worker_wall_s"] == pytest.approx(6.0)
        assert agg["by_engine"]["simresub"]["total_gain"] == 1
        # The additive batch totals agree with the attribution.
        assert agg["total_gain"] == sum(
            e["total_gain"] for e in agg["by_engine"].values())

    def test_campaign_rows_carry_engine_gain(self, tmp_path):
        report = run_campaign(
            jobs_from_benchmarks(["router"], config=FlowConfig(iterations=1)),
            cache_dir=None, workers=1, suite="gain")
        row = report.result("router")
        assert set(row.engine_gain) <= {"kernel", "mspf", "simresub", "bdiff"}
        assert sum(row.engine_gain.values()) > 0
        assert row.to_dict()["engine_gain"] == row.engine_gain

    def test_campaign_report_sums_job_telemetry(self, tmp_path):
        report = run_campaign(
            jobs_from_benchmarks(["router", "i2c"],
                                 config=FlowConfig(iterations=1)),
            cache_dir=None, workers=1, suite="agg")
        # Two flows × 4 partitioned passes each (kernel, mspf, simresub,
        # bdiff): the aggregate must cover all eight, not just the last
        # flow's four.
        assert report.parallel is not None
        assert report.parallel["passes"] == 8
        assert report.parallel["num_windows"] > 0


# -- obs / run-report integration ---------------------------------------------

class TestCampaignReporting:
    def test_campaign_lands_in_v3_run_report(self, tmp_path):
        from repro.obs.report import build_report, validate_report
        session = obs.enable()
        try:
            run_campaign(
                jobs_from_benchmarks(["router"],
                                     config=FlowConfig(iterations=1)),
                cache_dir=str(tmp_path / "c"), workers=1, suite="rep")
        finally:
            obs.disable()
        assert len(session.campaign_reports) == 1
        report = build_report(session, command="test")
        validate_report(report)
        assert report["version"] == 3
        section = report["campaign"][0]
        assert section["suite"] == "rep"
        assert section["jobs"] == 1 and section["misses"] == 1
        assert section["jobs_detail"][0]["benchmark"] == "router"
        assert json.loads(json.dumps(report)) == report

    def test_session_sees_job_flows_in_job_order(self, tmp_path):
        session = obs.enable()
        try:
            run_campaign(
                jobs_from_benchmarks(["router", "i2c"],
                                     config=FlowConfig(iterations=1)),
                cache_dir=None, workers=1, suite="order")
        finally:
            obs.disable()
        assert len(session.flow_stats) == 2
        assert len(session.parallel_reports) == 8
        assert not session.metrics.is_empty()


# -- suite files --------------------------------------------------------------

class TestSuiteLoader:
    def test_loads_jobs_with_defaults_and_overrides(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text(
            'name = "mini"\n'
            "[defaults]\niterations = 1\n"
            '[[jobs]]\nbenchmark = "router"\n'
            '[[jobs]]\nbenchmark = "i2c"\niterations = 2\n'
            'name = "i2c-deep"\n')
        suite, jobs = load_suite(str(path))
        assert suite == "mini"
        assert [j.name for j in jobs] == ["router", "i2c-deep"]
        assert jobs[0].config.iterations == 1
        assert jobs[1].config.iterations == 2

    def test_rejects_unknown_keys_and_empty_suites(self, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text('[[jobs]]\nbenchmark = "router"\nworkers = 4\n')
        with pytest.raises(ValueError, match="unknown job key"):
            load_suite(str(bad))
        empty = tmp_path / "empty.toml"
        empty.write_text('name = "x"\n')
        with pytest.raises(ValueError, match="no .*jobs"):
            load_suite(str(empty))

    def test_repo_epfl_suite_parses(self):
        root = os.path.join(os.path.dirname(__file__), "..")
        suite, jobs = load_suite(os.path.join(root, "suites", "epfl.toml"))
        assert suite == "epfl-full"
        assert len(jobs) == 17
        assert all(j.config.iterations == 1 for j in jobs)

    def test_repo_epfl_suite_nightly_tier_adds_large_arith(self):
        # The four large arithmetic jobs ride behind the nightly-large
        # tier: absent by default, included when the tier is requested.
        root = os.path.join(os.path.dirname(__file__), "..")
        path = os.path.join(root, "suites", "epfl.toml")
        _s, default_jobs = load_suite(path)
        _s, nightly_jobs = load_suite(path, tiers=["nightly-large"])
        extra = ({j.name for j in nightly_jobs}
                 - {j.name for j in default_jobs})
        assert extra == {"log2_large", "mult_large",
                         "div_large", "hypotenuse_large"}

    def test_tiered_jobs_filtered_and_validated(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text('[[jobs]]\nbenchmark = "router"\n'
                        '[[jobs]]\nbenchmark = "i2c"\ntier = "nightly"\n')
        _s, jobs = load_suite(str(path))
        assert [j.name for j in jobs] == ["router"]
        _s, jobs = load_suite(str(path), tiers=["nightly"])
        assert [j.name for j in jobs] == ["router", "i2c"]
        bad = tmp_path / "bad.toml"
        bad.write_text('[[jobs]]\nbenchmark = "router"\ntier = 3\n')
        with pytest.raises(ValueError, match="tier"):
            load_suite(str(bad))

    def test_duplicate_benchmark_labels_are_disambiguated(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text('[[jobs]]\nbenchmark = "router"\n'
                        '[[jobs]]\nbenchmark = "router"\niterations = 2\n')
        _suite, jobs = load_suite(str(path))
        assert [j.name for j in jobs] == ["router", "router@1"]


class TestFlowConfigPool:
    def test_pool_field_defaults_to_none_and_is_not_semantic(self):
        config = FlowConfig(iterations=1)
        assert config.pool is None
        semantic = canonical_flow_config(config)
        assert semantic is not None
        assert "pool" not in json.dumps(semantic)
        replaced = dataclasses.replace(config, pool=None)
        aig = make_random_aig(5, 30, seed=3)
        assert flow_cache_key(aig, config) == flow_cache_key(aig, replaced)
