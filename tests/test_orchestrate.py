"""Tests for the pass-ordering search (``repro.orchestrate``).

The contracts under test:

* **Off == classic** — with ``FlowConfig.orchestrate`` left at ``None``
  the flow never even imports the search module, and the result is the
  deterministic fixed waterfall at any worker count.
* **Determinism** — a K-candidate search at ``jobs=4`` chooses the same
  ordering and produces the same final network as ``jobs=1`` (and as a
  rerun), because candidates are pure functions of (network, sequence,
  config) and the winner rule is ``(score, index)``.
* **Memo warm == cold** — a second search against the same cache
  directory recomputes **zero** stages and returns a byte-identical best
  network and the same chosen ordering.
* **Chaos containment** — a corrupt-stage fault inside one candidate is
  rolled back by the per-candidate guard without sinking the search, and
  chaos disables the memo entirely.
* **Key hygiene** — stage keys track semantic knobs only; execution
  knobs (threads) never enter flow or stage keys.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.registry import get_benchmark
from repro.campaign import (
    cache_context,
    canonical_stage_config,
    flow_cache_key,
    network_fingerprint,
    stage_cache_key,
)
from repro.guard.chaos import FaultPlan
from repro.parallel.window_io import CompactAig
from repro.sat.equivalence import check_equivalence
from repro.sbm.config import FlowConfig, OrchestrateConfig
from repro.sbm.flow import sbm_flow

from tests.conftest import make_random_aig


def structure(aig):
    """Canonical structural tuple for bit-identity comparison."""
    compact = CompactAig.from_aig(aig)
    return compact.num_pis, tuple(compact.gates), tuple(compact.outputs)


def small_search_config(**overrides) -> FlowConfig:
    ocfg = OrchestrateConfig(k=overrides.pop("k", 3),
                             rounds=overrides.pop("rounds", 2),
                             seed=overrides.pop("seed", 0xD46A11))
    return FlowConfig(iterations=1, orchestrate=ocfg, **overrides)


# -- orchestrate off: the classic waterfall is untouched ----------------------

class TestOrchestrateOff:
    def test_classic_flow_never_imports_search(self, monkeypatch):
        """orchestrate=None must not even touch repro.orchestrate."""
        import sys
        for name in [m for m in sys.modules if m.startswith("repro.orchestrate")]:
            monkeypatch.delitem(sys.modules, name)
        monkeypatch.setitem(sys.modules, "repro.orchestrate.search", None)
        aig = make_random_aig(6, 60, seed=11)
        optimized, stats = sbm_flow(aig, FlowConfig(iterations=1))
        assert optimized.num_ands <= aig.num_ands
        assert stats.orchestrate is None
        assert "orchestrate" not in stats.to_dict()

    @pytest.mark.parametrize("name", ["router", "i2c"])
    def test_waterfall_bit_identical_across_jobs(self, name):
        aig = get_benchmark(name)
        serial, _ = sbm_flow(aig, FlowConfig(iterations=1, jobs=1))
        fanned, _ = sbm_flow(aig, FlowConfig(iterations=1, jobs=4))
        assert structure(serial) == structure(fanned)

    def test_flow_key_ignores_orchestrate_threads(self):
        aig = get_benchmark("router")
        base = FlowConfig(iterations=1, orchestrate=OrchestrateConfig(k=3))
        threaded = dataclasses.replace(
            base, orchestrate=dataclasses.replace(base.orchestrate, threads=7))
        assert flow_cache_key(aig, base) == flow_cache_key(aig, threaded)
        off = FlowConfig(iterations=1)
        assert flow_cache_key(aig, base) != flow_cache_key(aig, off)

    def test_incompatible_knobs_raise(self):
        aig = make_random_aig(5, 30, seed=3)
        with pytest.raises(ValueError, match="flow_timeout_s"):
            sbm_flow(aig, small_search_config(flow_timeout_s=10.0))
        with pytest.raises(ValueError, match="checkpoint_dir"):
            sbm_flow(aig, small_search_config(checkpoint_dir="/tmp/nope"))
        with pytest.raises(ValueError, match="resume_from"):
            sbm_flow(aig, small_search_config(), resume_from="/tmp/nope")


# -- the search itself --------------------------------------------------------

class TestOrderingSearch:
    def test_search_is_deterministic_and_equivalent(self):
        aig = make_random_aig(7, 120, seed=42)
        config = small_search_config(k=4)
        one, stats_one = sbm_flow(aig, config)
        two, stats_two = sbm_flow(aig, config)
        assert structure(one) == structure(two)
        assert stats_one.orchestrate["chosen"] == stats_two.orchestrate["chosen"]
        ok, _cex = check_equivalence(aig, one)
        assert ok
        assert one.num_ands <= aig.num_ands

    def test_jobs4_matches_jobs1(self):
        aig = make_random_aig(7, 120, seed=42)
        serial, s1 = sbm_flow(aig, small_search_config(k=4, jobs=1))
        fanned, s4 = sbm_flow(aig, small_search_config(k=4, jobs=4))
        assert structure(serial) == structure(fanned)
        assert s1.orchestrate["chosen"] == s4.orchestrate["chosen"]
        ok, _cex = check_equivalence(aig, fanned)
        assert ok

    def test_stats_record_rounds_and_candidates(self):
        aig = make_random_aig(6, 80, seed=9)
        _net, stats = sbm_flow(aig, small_search_config(k=3, rounds=2))
        doc = stats.orchestrate
        assert doc["k"] == 3
        assert len(doc["rounds"]) == 2
        for entry in doc["rounds"]:
            assert len(entry["candidates"]) == 3
            assert entry["ordering"][-1] == "balance"  # vital stage pinned
        # every candidate of every round ends with the pinned tail
        for entry in doc["rounds"]:
            for cand in entry["candidates"]:
                assert cand["sequence"][-1] == "balance"

    def test_iteration_stage_records_are_labelled_by_round(self):
        aig = make_random_aig(6, 80, seed=9)
        _net, stats = sbm_flow(aig, small_search_config(k=2, rounds=2))
        names = [record.name for record in stats.records]
        assert names[0] == "initial" and names[-1] == "final"
        assert any(name.endswith("[r1]") for name in names)
        assert any(name.endswith("[r2]") for name in names)


# -- the stage memo -----------------------------------------------------------

class TestStageMemo:
    def test_warm_rerun_recomputes_nothing(self, tmp_path, monkeypatch):
        from repro import hotpath
        monkeypatch.setattr(hotpath, "CODE_VERSION", "sbm-flow/next")
        aig = make_random_aig(7, 120, seed=17)
        config = small_search_config(k=3)
        with cache_context(str(tmp_path / "cache")):
            cold, cold_stats = sbm_flow(aig, config)
        cold_memo = cold_stats.orchestrate["stage_memo"]
        assert cold_memo["misses"] > 0 and cold_memo["stores"] > 0
        with cache_context(str(tmp_path / "cache")):
            warm, warm_stats = sbm_flow(aig, config)
        warm_memo = warm_stats.orchestrate["stage_memo"]
        assert warm_memo["misses"] == 0, "warm search recomputed a stage"
        assert warm_memo["stores"] == 0
        assert warm_memo["disk_hits"] > 0
        assert structure(cold) == structure(warm)
        assert (cold_stats.orchestrate["chosen"]
                == warm_stats.orchestrate["chosen"])

    def test_memo_works_without_cache_context(self):
        """In-memory memo alone still dedups repeated stage evaluations."""
        aig = make_random_aig(6, 90, seed=23)
        _net, stats = sbm_flow(aig, small_search_config(k=3))
        memo = stats.orchestrate["stage_memo"]
        # candidate 0 repeats the incumbent each round: memory hits happen
        assert memo["memory_hits"] > 0
        assert memo["disk_hits"] == 0  # no cache directory active

    def test_stage_key_semantics(self):
        aig = get_benchmark("router")
        fp = network_fingerprint(aig)
        config = FlowConfig(iterations=1)
        key = stage_cache_key(fp, "mspf", canonical_stage_config(config, "mspf"))
        # same inputs -> same key
        assert key == stage_cache_key(
            fp, "mspf", canonical_stage_config(config, "mspf"))
        # a semantic knob of the stage's engine changes the key
        tweaked = dataclasses.replace(
            config,
            mspf=dataclasses.replace(config.mspf, max_connectable_fanins=3))
        assert key != stage_cache_key(
            fp, "mspf", canonical_stage_config(tweaked, "mspf"))
        # a knob of a *different* engine does not
        other = dataclasses.replace(
            config, kernel=dataclasses.replace(config.kernel, max_cubes=9))
        assert key == stage_cache_key(
            fp, "mspf", canonical_stage_config(other, "mspf"))
        with pytest.raises(ValueError):
            canonical_stage_config(config, "no-such-stage")


# -- chaos containment --------------------------------------------------------

class TestChaos:
    def test_corrupt_stage_rolls_back_without_sinking_search(self):
        aig = make_random_aig(7, 120, seed=31)
        config = small_search_config(
            k=3, rounds=2,
            chaos=FaultPlan(seed=7, stage_corrupt_rate=0.4),
            verify_each_step=True)
        optimized, stats = sbm_flow(aig, config)
        guard = stats.guard
        assert guard is not None
        assert guard.rollbacks, "expected at least one chaos rollback"
        assert guard.faults, "fault plan should have injected"
        ok, _cex = check_equivalence(aig, optimized)
        assert ok, "guard let a corrupted candidate through"
        # chaos makes stage results fault-dependent: memo must be off
        assert stats.orchestrate["stage_memo"] is None


# -- suite + campaign wiring --------------------------------------------------

class TestWiring:
    def test_suite_orchestrate_k(self, tmp_path):
        from repro.campaign import load_suite
        path = tmp_path / "suite.toml"
        path.write_text(
            'name = "orch"\n'
            "[defaults]\n"
            "iterations = 1\n"
            "[[jobs]]\n"
            'benchmark = "router"\n'
            "orchestrate_k = 3\n"
            "[[jobs]]\n"
            'benchmark = "i2c"\n')
        _name, jobs = load_suite(str(path))
        assert jobs[0].config.orchestrate.k == 3
        assert jobs[1].config.orchestrate is None
        path.write_text(
            "[[jobs]]\n"
            'benchmark = "router"\n'
            "orchestrate_k = 0\n")
        with pytest.raises(ValueError, match="orchestrate_k"):
            load_suite(str(path))

    def test_campaign_reports_cache_slots(self, tmp_path, monkeypatch):
        from repro import hotpath
        from repro.campaign import jobs_from_benchmarks, run_campaign
        monkeypatch.setattr(hotpath, "CODE_VERSION", "sbm-flow/next")
        config = small_search_config(k=2, rounds=1)
        jobs = jobs_from_benchmarks(["router"], config=config)
        report = run_campaign(jobs, cache_dir=str(tmp_path / "cache"))
        slots = report.cache_slots
        assert set(slots) == {"flow", "stage"}
        assert slots["stage"]["stores"] > 0
        assert report.to_dict()["cache_slots"] == slots
