"""Unit tests for the core AIG data structure."""

import pytest

from repro.aig.aig import (
    CONST0,
    CONST1,
    Aig,
    lit,
    lit_is_compl,
    lit_node,
    lit_not,
    lit_notcond,
)
from repro.errors import AigError


class TestLiterals:
    def test_lit_roundtrip(self):
        assert lit(5) == 10
        assert lit(5, True) == 11
        assert lit_node(11) == 5
        assert lit_is_compl(11)
        assert not lit_is_compl(10)

    def test_lit_not(self):
        assert lit_not(10) == 11
        assert lit_not(11) == 10

    def test_lit_notcond(self):
        assert lit_notcond(10, True) == 11
        assert lit_notcond(10, False) == 10

    def test_constants(self):
        assert CONST0 == 0
        assert CONST1 == 1
        assert lit_not(CONST0) == CONST1


class TestConstruction:
    def test_empty_network(self):
        aig = Aig()
        assert aig.num_pis == 0
        assert aig.num_pos == 0
        assert aig.num_ands == 0
        assert aig.depth == 0

    def test_add_pi_names(self):
        aig = Aig()
        aig.add_pi("clk_en")
        aig.add_pi()
        assert aig.pi_name(0) == "clk_en"
        assert aig.pi_name(1) == "pi1"

    def test_add_and_creates_node(self):
        aig = Aig()
        a, b = aig.add_pis(2)
        f = aig.add_and(a, b)
        assert aig.num_ands == 1
        assert not lit_is_compl(f)
        assert aig.is_and(lit_node(f))

    def test_strash_dedup(self):
        aig = Aig()
        a, b = aig.add_pis(2)
        f = aig.add_and(a, b)
        g = aig.add_and(b, a)  # commuted
        assert f == g
        assert aig.num_ands == 1

    def test_const_folding(self):
        aig = Aig()
        a = aig.add_pi()
        assert aig.add_and(a, CONST0) == CONST0
        assert aig.add_and(a, CONST1) == a
        assert aig.add_and(a, a) == a
        assert aig.add_and(a, lit_not(a)) == CONST0
        assert aig.num_ands == 0

    def test_or_xor_mux_identities(self):
        aig = Aig()
        a, b = aig.add_pis(2)
        assert aig.add_or(a, CONST0) == a
        assert aig.add_or(a, CONST1) == CONST1
        assert aig.add_xor(a, CONST0) == a
        assert aig.add_xor(a, CONST1) == lit_not(a)
        assert aig.add_mux(CONST1, a, b) == a
        assert aig.add_mux(CONST0, a, b) == b

    def test_multi_input_gates_empty(self):
        aig = Aig()
        assert aig.add_and_multi([]) == CONST1
        assert aig.add_or_multi([]) == CONST0
        assert aig.add_xor_multi([]) == CONST0

    def test_po_registration(self):
        aig = Aig()
        a, b = aig.add_pis(2)
        f = aig.add_and(a, b)
        index = aig.add_po(f, "out")
        assert index == 0
        assert aig.po_name(0) == "out"
        assert aig.pos() == [f]

    def test_set_po_updates_refs(self):
        aig = Aig()
        a, b = aig.add_pis(2)
        f = aig.add_and(a, b)
        aig.add_po(f)
        assert aig.ref_count(lit_node(f)) == 1
        aig.set_po(0, a)
        # f's node became dangling and was collected
        assert aig.num_ands == 0

    def test_invalid_literal_rejected(self):
        aig = Aig()
        with pytest.raises(AigError):
            aig.add_and(2, 1000)


class TestQueries:
    def test_mffc_size_chain(self):
        aig = Aig()
        a, b, c = aig.add_pis(3)
        n1 = aig.add_and(a, b)
        n2 = aig.add_and(n1, c)
        aig.add_po(n2)
        assert aig.mffc_size(lit_node(n2)) == 2
        assert aig.mffc_size(lit_node(n1)) == 1

    def test_mffc_shared_node_excluded(self):
        aig = Aig()
        a, b, c = aig.add_pis(3)
        shared = aig.add_and(a, b)
        n1 = aig.add_and(shared, c)
        n2 = aig.add_and(shared, lit_not(c))
        aig.add_po(n1)
        aig.add_po(n2)
        # shared has two fanouts; it is not in either MFFC
        assert aig.mffc_size(lit_node(n1)) == 1
        assert aig.mffc_size(lit_node(n2)) == 1

    def test_mffc_does_not_change_refcounts(self):
        aig = Aig()
        a, b, c = aig.add_pis(3)
        n2 = aig.add_and(aig.add_and(a, b), c)
        aig.add_po(n2)
        before = [aig.ref_count(n) for n in aig.nodes()]
        aig.mffc_size(lit_node(n2))
        after = [aig.ref_count(n) for n in aig.nodes()]
        assert before == after

    def test_levels_and_depth(self):
        aig = Aig()
        a, b, c, d = aig.add_pis(4)
        f = aig.add_and(aig.add_and(a, b), aig.add_and(c, d))
        aig.add_po(f)
        assert aig.depth == 2
        levels = aig.levels()
        assert levels[lit_node(f)] == 2

    def test_topological_order_properties(self, random_aig_factory):
        aig = random_aig_factory(8, 100, seed=3)
        order = aig.topological_order()
        position = {n: i for i, n in enumerate(order)}
        for n in order:
            for f in aig.fanins(n):
                fn = lit_node(f)
                if aig.is_and(fn):
                    assert position[fn] < position[n]

    def test_fanout_nodes(self):
        aig = Aig()
        a, b, c = aig.add_pis(3)
        n1 = aig.add_and(a, b)
        n2 = aig.add_and(n1, c)
        aig.add_po(n2)
        assert aig.fanout_nodes(lit_node(n1)) == [lit_node(n2)]

    def test_stats(self, small_adder):
        stats = small_adder.stats()
        assert stats["pis"] == 8
        assert stats["pos"] == 5
        assert stats["ands"] > 0
        assert stats["levels"] > 0


class TestCleanup:
    def test_cleanup_drops_dangling(self):
        aig = Aig()
        a, b, c = aig.add_pis(3)
        used = aig.add_and(a, b)
        aig.add_and(a, c)  # dangling
        aig.add_po(used)
        compact = aig.cleanup()
        assert compact.num_ands == 1

    def test_cleanup_preserves_function(self, small_mult):
        from repro.aig.simulate import po_tables
        assert po_tables(small_mult.cleanup()) == po_tables(small_mult)

    def test_cleanup_idempotent(self, random_aig_factory):
        aig = random_aig_factory(6, 60, seed=1)
        once = aig.cleanup()
        twice = once.cleanup()
        assert once.num_ands == twice.num_ands
        from repro.aig.simulate import po_tables
        assert po_tables(once) == po_tables(twice)

    def test_cleanup_with_map(self, random_aig_factory):
        aig = random_aig_factory(6, 60, seed=2)
        new, mapping = aig.cleanup_with_map()
        # Every PO-reachable node must be mapped
        for n in aig.topological_order():
            assert n in mapping

    def test_check_passes_on_fresh_network(self, random_aig_factory):
        aig = random_aig_factory(8, 200, seed=5)
        aig.check()
