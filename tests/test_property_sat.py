"""Property-based tests (hypothesis) for the SAT solver."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.solver import SatSolver


def clause_strategy(num_vars):
    literal = st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v]))
    return st.lists(literal, min_size=1, max_size=3)


def formula_strategy(max_vars=7, max_clauses=24):
    return st.integers(min_value=1, max_value=max_vars).flatmap(
        lambda n: st.tuples(
            st.lists(clause_strategy(n), min_size=0, max_size=max_clauses),
            st.just(n)))


def brute_force(clauses, num_vars):
    for bits in range(1 << num_vars):
        if all(any(((bits >> (abs(l) - 1)) & 1) == (l > 0) for l in clause)
               for clause in clauses):
            return True
    return False


@given(formula_strategy())
@settings(max_examples=150, deadline=None)
def test_solver_agrees_with_brute_force(spec):
    clauses, n = spec
    solver = SatSolver()
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    result = solver.solve() if ok else False
    assert result == brute_force(clauses, n)
    if result:
        model = solver.model()
        for clause in clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause)


@given(formula_strategy(max_vars=6, max_clauses=15))
@settings(max_examples=60, deadline=None)
def test_assumptions_consistent_with_added_units(spec):
    """solve(assumptions) must agree with solving formula + unit clauses."""
    clauses, n = spec
    assumptions = (1, -2) if n >= 2 else (1,)
    incremental = SatSolver()
    ok1 = True
    for clause in clauses:
        ok1 = incremental.add_clause(clause) and ok1
    result_assume = incremental.solve(assumptions) if ok1 else False

    monolithic = SatSolver()
    ok2 = True
    for clause in list(clauses) + [[a] for a in assumptions]:
        ok2 = monolithic.add_clause(clause) and ok2
    result_units = monolithic.solve() if ok2 else False
    assert result_assume == result_units


@given(formula_strategy(max_vars=6, max_clauses=12))
@settings(max_examples=40, deadline=None)
def test_incremental_solving_stable(spec):
    """Repeated solves of the same formula give the same answer."""
    clauses, n = spec
    solver = SatSolver()
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    if not ok:
        return
    first = solver.solve()
    assert solver.solve() == first
    assert solver.solve() == first
