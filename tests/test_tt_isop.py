"""Tests for the Minato–Morreale ISOP algorithm."""

import random

import pytest

from repro.errors import ReproError
from repro.tt.isop import (
    cover_table,
    cube_literal_count,
    cube_table,
    isop,
    isop_table,
)
from repro.tt.truthtable import TruthTable, table_mask


def test_cube_table_basics():
    # x0 & !x1 over 2 vars
    assert cube_table((0b01, 0b10), 2) == 0b0010
    # tautology cube
    assert cube_table((0, 0), 2) == 0b1111


def test_isop_exact_cover_random():
    rng = random.Random(0)
    for n in range(1, 7):
        for _ in range(30):
            bits = rng.getrandbits(1 << n)
            t = TruthTable(bits, n)
            cubes = isop_table(t)
            assert cover_table(cubes, n) == bits


def test_isop_with_dont_cares_respects_bounds():
    rng = random.Random(1)
    for n in range(2, 7):
        for _ in range(30):
            on = rng.getrandbits(1 << n)
            dc = rng.getrandbits(1 << n)
            lower = TruthTable(on & ~dc, n)
            upper = TruthTable(on | dc, n)
            cover = cover_table(isop(lower, upper), n)
            assert lower.bits & ~cover == 0
            assert cover & ~upper.bits & table_mask(n) == 0


def test_isop_exploits_dont_cares():
    # onset {11}, dc {01,10}: with DCs a single-literal cube suffices
    lower = TruthTable(0b1000, 2)
    upper = TruthTable(0b1110, 2)
    with_dc = isop(lower, upper)
    without_dc = isop(lower, lower)
    assert cube_literal_count(with_dc) <= cube_literal_count(without_dc)


def test_isop_irredundant_random():
    """Removing any cube must uncover part of the onset."""
    rng = random.Random(2)
    for _ in range(40):
        n = rng.randint(2, 5)
        t = TruthTable(rng.getrandbits(1 << n), n)
        cubes = isop_table(t)
        for i in range(len(cubes)):
            reduced = cubes[:i] + cubes[i + 1:]
            assert cover_table(reduced, n) != t.bits or not cubes


def test_isop_constant_functions():
    assert isop_table(TruthTable.constant(False, 3)) == []
    taut = isop_table(TruthTable.constant(True, 3))
    assert taut == [(0, 0)]


def test_isop_invalid_bounds():
    with pytest.raises(ReproError):
        isop(TruthTable(0b1111, 2), TruthTable(0b0111, 2))
    with pytest.raises(ReproError):
        isop(TruthTable(0, 2), TruthTable(0, 3))


def test_isop_single_minterm():
    t = TruthTable(0b1000, 2)
    cubes = isop_table(t)
    assert len(cubes) == 1
    assert cube_literal_count(cubes) == 2
