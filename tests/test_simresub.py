"""Tests for simulation-guided Boolean resubstitution (the fifth engine).

The contracts under test:

* **Pattern store** — deterministic seeding, bounded counterexample
  growth, and hot/reference signature bit-identity.
* **No false negatives** — signature filtering may propose candidates SAT
  later refutes, but any truly-valid resubstitution within the divisor
  budget is always proposed (the hypothesis superset property).
* **Soundness** — the pass preserves the network function (SAT-CEC), on
  random logic and on real EPFL benchmarks.
* **Determinism** — ``jobs=4`` is bit-identical to ``jobs=1``, and the
  hot path is bit-identical to the reference path.
* **Flow integration** — the stage appears exactly when
  ``enable_simresub`` is set, degrades under chaos faults with rollback,
  and its CEGAR loop actually learns counterexample patterns.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import hotpath
from repro.aig.aig import lit
from repro.aig.simulate import simulate_words
from repro.bench.registry import get_benchmark
from repro.errors import AigError
from repro.guard.chaos import FaultPlan
from repro.parallel.window_io import CompactAig
from repro.sat.equivalence import assert_equivalent, check_equivalence
from repro.sbm.config import FlowConfig, SimresubConfig
from repro.sbm.flow import sbm_flow
from repro.sbm.simpatterns import PatternStore
from repro.sbm.simresub import iter_candidates, simresub_pass

from tests.conftest import make_random_aig


def structure(aig):
    """Canonical structural tuple for bit-identity comparison."""
    compact = CompactAig.from_aig(aig)
    return compact.num_pis, tuple(compact.gates), tuple(compact.outputs)


# -- the pattern store --------------------------------------------------------

class TestPatternStore:
    def test_seeding_is_deterministic(self):
        a = PatternStore(8, num_words=2, seed=7)
        b = PatternStore(8, num_words=2, seed=7)
        assert a.pi_words() == b.pi_words()
        assert a.num_patterns == 128 and a.width_words == 2
        assert PatternStore(8, num_words=2, seed=8).pi_words() != a.pi_words()

    def test_counterexample_growth_is_bounded(self):
        store = PatternStore(3, num_words=1, max_patterns=65, seed=1)
        assert not store.full
        assert store.add_pattern([True, False, True])
        assert store.num_patterns == 65
        assert store.width_words == 2          # spilled into a second round
        assert store.mask == (1 << 65) - 1
        # The new pattern landed in the new bit position of each column.
        assert store.pi_words()[0] >> 64 == 1
        assert store.pi_words()[1] >> 64 == 0
        assert store.full
        assert not store.add_pattern([False, False, False])
        assert store.num_patterns == 65

    def test_rejects_malformed_inputs(self):
        with pytest.raises(AigError):
            PatternStore(0)
        with pytest.raises(AigError):
            PatternStore(4, num_words=0)
        store = PatternStore(4, num_words=1)
        with pytest.raises(AigError, match="bits"):
            store.add_pattern([True, False])
        with pytest.raises(AigError, match="PIs"):
            store.signatures(make_random_aig(6, 30, seed=0))

    def test_signatures_hot_matches_reference(self):
        aig = make_random_aig(7, 90, seed=3)
        store = PatternStore(7, num_words=2, seed=5)
        store.add_pattern([True] * 7)          # force a partial last round
        hot = store.signatures(aig)
        with hotpath.disabled():
            ref = store.signatures(aig)
        assert hot == ref

    def test_signature_bits_are_per_pattern_simulations(self):
        # Bit b of every signature equals a scalar simulation of pattern b.
        aig = make_random_aig(4, 25, seed=9)
        store = PatternStore(4, num_words=1, seed=2)
        values = store.signatures(aig)
        words = store.pi_words()
        for b in (0, 17, 63):
            single = simulate_words(
                aig, [(w >> b) & 1 for w in words])
            for node, word in single.items():
                assert (values[node] >> b) & 1 == word & 1, (b, node)


# -- no false negatives (the superset property) -------------------------------

def _exhaustive_tables(aig):
    """Node-indexed truth tables over all ``2^num_pis`` assignments."""
    n = aig.num_pis
    words = []
    for i in range(n):
        bits = 0
        for b in range(1 << n):
            if (b >> i) & 1:
                bits |= 1 << b
        words.append(bits)
    values = [0] * (aig.max_node + 1)
    for node, word in simulate_words(aig, words).items():
        values[node] = word
    return values, (1 << (1 << n)) - 1


def _valid_resubs(aig, n, divisors, tables, full, mffc):
    """All truly function-preserving candidates, by exhaustive tables,
    mirroring the engine's MFFC gating (the ground truth the signature
    filter must never lose)."""
    from repro.sbm.simresub import _XOR_COST
    tn = tables[n]
    valid = set()
    if tn == 0:
        valid.add(("const", 0))
    elif tn == full:
        valid.add(("const", 1))
    sigs = [tables[d] for d in divisors]
    for d, td in zip(divisors, sigs):
        if td == tn:
            valid.add(("wire", lit(d)))
        elif td ^ full == tn:
            valid.add(("wire", lit(d, True)))
    if mffc < 2:
        return valid
    for i in range(len(divisors)):
        for j in range(i + 1, len(divisors)):
            for ca in (False, True):
                va = sigs[i] ^ full if ca else sigs[i]
                for cb in (False, True):
                    vb = sigs[j] ^ full if cb else sigs[j]
                    t = va & vb
                    if t == tn:
                        valid.add(("and", lit(divisors[i], ca),
                                   lit(divisors[j], cb), False))
                    elif t ^ full == tn:
                        valid.add(("and", lit(divisors[i], ca),
                                   lit(divisors[j], cb), True))
            if mffc > _XOR_COST:
                x = sigs[i] ^ sigs[j]
                if x == tn:
                    valid.add(("xor", lit(divisors[i]),
                               lit(divisors[j]), False))
                elif x ^ full == tn:
                    valid.add(("xor", lit(divisors[i]),
                               lit(divisors[j]), True))
    return valid


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10 ** 6), num_pis=st.integers(3, 5),
       num_nodes=st.integers(8, 30), subset_seed=st.integers(0, 10 ** 6))
def test_signature_candidates_superset_of_valid_resubs(
        seed, num_pis, num_nodes, subset_seed):
    """Sparse-signature filtering never loses a truly-valid candidate.

    Ground truth: exhaustive truth tables over all ``2^num_pis``
    assignments.  The engine only sees a random *subset* of those
    assignments as patterns; every exhaustively-valid resubstitution
    agrees with the target on any subset, so it must be among the
    candidates :func:`iter_candidates` yields — signature filtering can
    only produce false positives (for SAT to kill), never false
    negatives.
    """
    import random
    aig = make_random_aig(num_pis, num_nodes, seed=seed)
    tables, full = _exhaustive_tables(aig)
    # A sparse pattern subset (at most half the space, possibly tiny).
    rng = random.Random(subset_seed)
    space = 1 << num_pis
    subset = sorted(rng.sample(range(space), rng.randint(1, space // 2)))
    sparse = [sum(((t >> b) & 1) << i for i, b in enumerate(subset))
              for t in tables]
    mask = (1 << len(subset)) - 1
    config = SimresubConfig(max_pair_checks=10 ** 9)
    order = aig.topological_order()
    position = {n: i for i, n in enumerate(order)}
    for n in order:
        if not aig.is_and(n):
            continue
        divisors = list(aig.pis()) + [
            m for m in order[:position[n]] if aig.is_and(m)]
        mffc = aig.mffc_size(n)
        proposed = set(iter_candidates(aig, n, divisors, sparse, mask,
                                       mffc, config))
        valid = _valid_resubs(aig, n, divisors, tables, full, mffc)
        assert valid <= proposed, (n, valid - proposed)


# -- the engine pass ----------------------------------------------------------

class TestSimresubPass:
    def test_function_preserved_on_random(self, random_aig_factory):
        for seed in range(4):
            aig = random_aig_factory(10, 200, seed=seed)
            reference = aig.cleanup()
            stats = simresub_pass(aig)
            aig.check()
            assert stats.partitions >= 1
            ok, _ = check_equivalence(reference, aig.cleanup())
            assert ok, seed

    def test_reduces_redundant_logic(self, random_aig_factory):
        aig = random_aig_factory(8, 150, seed=7)
        before = aig.cleanup().num_ands
        stats = simresub_pass(aig)
        assert stats.rewrites > 0 and stats.gain > 0
        assert aig.cleanup().num_ands < before
        assert stats.candidates_validated >= stats.rewrites

    def test_cegar_learns_counterexample_patterns(self, random_aig_factory):
        # A small pattern prefix makes signature matching easy to fool:
        # SAT refutes candidates and every refutation must land in the
        # store as a new pattern (until it fills).
        aig = random_aig_factory(16, 400, seed=5)
        reference = aig.cleanup()
        config = SimresubConfig(pattern_words=1)
        stats = simresub_pass(aig, config)
        assert stats.candidates_refuted > 0
        assert stats.cex_patterns > 0
        assert stats.cex_patterns <= stats.candidates_refuted
        ok, _ = check_equivalence(reference, aig.cleanup())
        assert ok

    def test_deterministic_across_runs(self, random_aig_factory):
        # Same construction (same node ids) -> identical stats and result.
        a = random_aig_factory(10, 180, seed=11)
        b = random_aig_factory(10, 180, seed=11)
        sa = simresub_pass(a)
        sb = simresub_pass(b)
        assert sa == sb
        assert structure(a.cleanup()) == structure(b.cleanup())

    def test_hot_and_reference_paths_bit_identical(self, random_aig_factory):
        a = random_aig_factory(8, 150, seed=9)
        b = random_aig_factory(8, 150, seed=9)
        hot_stats = simresub_pass(a)
        with hotpath.disabled():
            ref_stats = simresub_pass(b)
        assert hot_stats == ref_stats
        assert structure(a.cleanup()) == structure(b.cleanup())

    @pytest.mark.parametrize("bench", ["router", "i2c"])
    def test_jobs4_bit_identical_and_cec_on_epfl(self, bench):
        serial = get_benchmark(bench)
        parallel = get_benchmark(bench)
        stats_1 = simresub_pass(serial, jobs=1)
        stats_4 = simresub_pass(parallel, jobs=4)
        assert structure(serial.cleanup()) == structure(parallel.cleanup())
        assert (stats_1.rewrites, stats_1.gain) == \
            (stats_4.rewrites, stats_4.gain)
        ok, cex = check_equivalence(get_benchmark(bench), serial.cleanup())
        assert ok, cex


# -- flow integration ---------------------------------------------------------

class TestFlowIntegration:
    def test_stage_runs_by_default_and_toggles_off(self, random_aig_factory):
        aig = random_aig_factory(8, 120, seed=5)
        on, stats_on = sbm_flow(aig, FlowConfig(iterations=1))
        assert any("simresub" in r.name for r in stats_on.records)
        off, stats_off = sbm_flow(
            aig, FlowConfig(iterations=1, enable_simresub=False))
        assert not any("simresub" in r.name for r in stats_off.records)
        assert_equivalent(aig, on)
        assert_equivalent(aig, off)

    def test_chaos_corrupting_the_stage_is_rolled_back(
            self, random_aig_factory):
        # The stage sits at spec index 4; a forced corrupt-result fault on
        # its site must be caught by the guard ladder and rolled back.
        aig = random_aig_factory(8, 150, seed=24)
        plan = FaultPlan(seed=1, rate=0.0,
                         forced={"stage:4:simresub": "corrupt-result"})
        config = FlowConfig(iterations=1, verify_each_step=True, chaos=plan)
        out, stats = sbm_flow(aig, config)
        guard = stats.guard
        assert ("stage:4:simresub", "corrupt-result") in guard.faults
        [event] = [e for e in guard.events if e.kind == "rolled_back"]
        assert event.stage == "simresub"
        assert guard.rollbacks == 1
        assert_equivalent(aig, out)

    def test_window_chaos_in_stage_scope_stays_equivalent(
            self, random_aig_factory):
        # Random window-level faults drawn inside the simresub scope (and
        # every other engine's) must never change the final function.
        aig = random_aig_factory(8, 150, seed=31)
        config = FlowConfig(iterations=1, chaos=FaultPlan(seed=13, rate=0.3),
                            verify_each_step=True)
        out, _stats = sbm_flow(aig, config)
        assert_equivalent(aig, out)
