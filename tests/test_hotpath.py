"""Bit-identity proofs for the ``repro.hotpath`` optimization layer.

Every hot path must produce *exactly* the reference path's results —
same values, same networks, same counterexamples, same allocation-order-
sensitive BDD node tables.  These tests toggle :mod:`repro.hotpath` and
compare, including the satellite obligations of the hotpath issue:

* compiled ``SimProgram`` / ``simulate_wide`` agree with the interpreted
  walk on random networks and random words (hypothesis-driven),
* the NPN LRU cache equals the uncached search for **all** 65536
  4-input functions,
* bitmask cut dominance equals the set-based subset test and cut
  enumeration is unchanged,
* BDD op caches / iteration preserve node ids and bailout points,
* the SAT sweeping / redundancy / guard / CEC call sites produce
  identical merges, networks, and counterexamples.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import hotpath
from repro.aig.cuts import Cut, enumerate_cuts
from repro.aig.io_aiger import write_aag_string
from repro.aig.simprogram import (
    pack_rounds,
    sim_program,
    simulate_wide,
    wide_mask,
)
from repro.aig.simulate import (
    po_words,
    simulate_complete,
    simulate_words,
)
from repro.bdd import pool as bdd_pool
from repro.bdd.manager import BddManager
from repro.errors import BddLimitError
from repro.guard.stage_guard import StageGuard
from repro.sat.equivalence import find_counterexample
from repro.sat.redundancy import remove_redundancies
from repro.sat.sweep import sat_sweep
from repro.tt.npn import _npn_canonical_reference, npn_canonical
from repro.tt.truthtable import TruthTable

from tests.conftest import make_random_aig


@pytest.fixture(autouse=True)
def _hotpath_on():
    """Each test starts from the default (enabled) hot-path state."""
    hotpath.set_enabled(True)
    bdd_pool.clear()
    yield
    hotpath.set_enabled(True)
    bdd_pool.clear()


aig_specs = st.tuples(st.integers(2, 8), st.integers(1, 60),
                      st.integers(0, 10 ** 6))


# -- compiled simulation ------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(aig_specs, st.integers(0, 10 ** 6))
def test_simulate_words_matches_reference(spec, word_seed):
    num_pis, num_nodes, seed = spec
    aig = make_random_aig(num_pis, num_nodes, seed)
    rng = random.Random(word_seed)
    words = [rng.getrandbits(64) for _ in range(aig.num_pis)]
    hot = simulate_words(aig, words)
    with hotpath.disabled():
        ref = simulate_words(aig, words)
    assert hot == ref
    assert po_words(aig, hot) == po_words(aig, ref)


@settings(max_examples=40, deadline=None)
@given(aig_specs, st.integers(0, 10 ** 6), st.integers(1, 6))
def test_simulate_wide_matches_per_round_reference(spec, word_seed, rounds):
    num_pis, num_nodes, seed = spec
    aig = make_random_aig(num_pis, num_nodes, seed)
    rng = random.Random(word_seed)
    pattern_rounds = [[rng.getrandbits(64) for _ in range(aig.num_pis)]
                      for _ in range(rounds)]
    wide = simulate_wide(aig, pack_rounds(pattern_rounds), rounds)
    mask64 = (1 << 64) - 1
    with hotpath.disabled():
        for r, words in enumerate(pattern_rounds):
            ref = simulate_words(aig, words)
            for node, value in ref.items():
                assert (wide[node] >> (64 * r)) & mask64 == value


@settings(max_examples=30, deadline=None)
@given(aig_specs)
def test_simulate_complete_matches_reference(spec):
    num_pis, num_nodes, seed = spec
    aig = make_random_aig(num_pis, num_nodes, seed)
    hot = simulate_complete(aig)
    with hotpath.disabled():
        ref = simulate_complete(aig)
    assert hot == ref


def test_sim_program_invalidated_by_edits():
    aig = make_random_aig(4, 20, seed=11)
    p1 = sim_program(aig)
    assert sim_program(aig) is p1  # cached while untouched
    x = aig.pis()[0]
    aig.add_po(aig.add_and(2 * x, 3))
    p2 = sim_program(aig)
    assert p2 is not p1
    words = [random.Random(3).getrandbits(64) for _ in range(aig.num_pis)]
    with hotpath.disabled():
        ref = simulate_words(aig, words)
    assert simulate_words(aig, words) == ref


def test_sim_program_survives_dict_swap():
    """__dict__.update network replacement must not resurrect a stale
    program (generations are globally unique, not per-instance)."""
    a = make_random_aig(4, 25, seed=5)
    b = make_random_aig(4, 25, seed=6)
    sim_program(a)
    sim_program(b)
    fresh = b.cleanup()
    a.__dict__.update(fresh.__dict__)
    words = [random.Random(9).getrandbits(64) for _ in range(4)]
    with hotpath.disabled():
        ref = simulate_words(a, words)
    assert simulate_words(a, words) == ref


# -- NPN cache ----------------------------------------------------------------

def test_npn_cached_equals_reference_all_4var_tables():
    """Satellite: the LRU/transform-set path must equal the uncached
    search for every one of the 65536 4-input functions."""
    for bits in range(1 << 16):
        table = TruthTable(bits, 4)
        canon, transform = npn_canonical(table)
        ref_canon, ref_transform = _npn_canonical_reference(table)
        assert canon.bits == ref_canon.bits, hex(bits)
        assert transform == ref_transform, hex(bits)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 3), st.integers(0, 255))
def test_npn_cached_equals_reference_small(n, bits):
    bits &= (1 << (1 << n)) - 1
    table = TruthTable(bits, n)
    canon, transform = npn_canonical(table)
    ref_canon, ref_transform = _npn_canonical_reference(table)
    assert (canon.bits, transform) == (ref_canon.bits, ref_transform)


# -- cut signatures -----------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 40), min_size=1, max_size=6, unique=True),
       st.lists(st.integers(0, 40), min_size=1, max_size=6, unique=True))
def test_cut_dominates_equals_set_subset(leaves_a, leaves_b):
    cut_a = Cut(tuple(sorted(leaves_a)))
    cut_b = Cut(tuple(sorted(leaves_b)))
    assert cut_a.dominates(cut_b) == set(leaves_a).issubset(leaves_b)


@settings(max_examples=25, deadline=None)
@given(aig_specs, st.booleans())
def test_enumerate_cuts_matches_reference(spec, tables):
    num_pis, num_nodes, seed = spec
    aig = make_random_aig(num_pis, num_nodes, seed)
    hot = enumerate_cuts(aig, k=4, cut_limit=8, compute_tables=tables)
    with hotpath.disabled():
        ref = enumerate_cuts(aig, k=4, cut_limit=8, compute_tables=tables)
    assert hot.keys() == ref.keys()
    for node in hot:
        assert [(c.leaves, c.table) for c in hot[node]] == \
            [(c.leaves, c.table) for c in ref[node]]


# -- BDD hot paths ------------------------------------------------------------

def _bdd_op_trace(seed, limit):
    rng = random.Random(seed)
    mgr = BddManager(8, node_limit=limit)
    funcs = [mgr.var(i) for i in range(8)] + [mgr.nvar(i) for i in range(8)]
    trace = []
    for _ in range(300):
        op = rng.choice(["and", "or", "xor", "xnor", "not", "ite",
                         "exists", "compose"])
        try:
            if op == "not":
                r = mgr.negate(rng.choice(funcs))
            elif op == "ite":
                r = mgr.ite(rng.choice(funcs), rng.choice(funcs),
                            rng.choice(funcs))
            elif op == "exists":
                r = mgr.exists(rng.choice(funcs), [rng.randrange(8)])
            elif op == "compose":
                r = mgr.compose(rng.choice(funcs), rng.randrange(8),
                                rng.choice(funcs))
            else:
                r = getattr(mgr, f"apply_{op}")(rng.choice(funcs),
                                                rng.choice(funcs))
            funcs.append(r)
            trace.append(r)
        except BddLimitError:
            trace.append(-1)
    return trace, (tuple(mgr._var), tuple(mgr._low), tuple(mgr._high))


@pytest.mark.parametrize("limit", [None, 40, 120])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_bdd_hot_path_preserves_node_ids_and_bailouts(seed, limit):
    """Node ids, unique-table contents, and BddLimitError points are
    allocation-order sensitive; the hot path must replay them exactly."""
    hot = _bdd_op_trace(seed, limit)
    with hotpath.disabled():
        ref = _bdd_op_trace(seed, limit)
    assert hot == ref


def test_bdd_manager_reuse_is_functionally_identical():
    mgr = BddManager(5)
    f1 = mgr.apply_xor(mgr.var(0), mgr.var(1))
    bits_before = mgr.to_truth_bits(f1, 5)
    mgr.reset_for_reuse(5, node_limit=50_000)
    f2 = mgr.apply_xor(mgr.var(0), mgr.var(1))
    assert f2 == f1  # canonical: recycled table returns the same node
    assert mgr.to_truth_bits(f2, 5) == bits_before
    fresh = BddManager(5, node_limit=50_000)
    g = fresh.apply_xor(fresh.var(0), fresh.var(1))
    assert fresh.to_truth_bits(g, 5) == bits_before


def test_bdd_pool_round_trip_and_cap():
    bdd_pool.clear()
    m1 = bdd_pool.acquire(4, node_limit=1000)
    bdd_pool.release(m1)
    m2 = bdd_pool.acquire(6, node_limit=2000)
    assert m2 is m1  # recycled
    assert m2.num_vars == 6
    assert m2.node_limit == 2000
    with hotpath.disabled():
        bdd_pool.release(m2)
        m3 = bdd_pool.acquire(4)
        assert m3 is not m2  # reference path never recycles


# -- optimizer call sites -----------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_sat_sweep_matches_reference(seed):
    a = make_random_aig(5, 40, seed)
    b = make_random_aig(5, 40, seed)
    merges_hot = sat_sweep(a)
    with hotpath.disabled():
        merges_ref = sat_sweep(b)
    assert merges_hot == merges_ref
    assert write_aag_string(a.cleanup()) == write_aag_string(b.cleanup())


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_remove_redundancies_matches_reference(seed):
    a = make_random_aig(5, 30, seed)
    b = make_random_aig(5, 30, seed)
    removed_hot = remove_redundancies(a, max_checks=25)
    with hotpath.disabled():
        removed_ref = remove_redundancies(b, max_checks=25)
    assert removed_hot == removed_ref
    assert write_aag_string(a.cleanup()) == write_aag_string(b.cleanup())


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_find_counterexample_matches_reference(seed):
    # >12 PIs forces the random-simulation (wide hot path) rung.
    a = make_random_aig(14, 50, seed, num_pos=6)
    b = make_random_aig(14, 50, seed + 1, num_pos=6)
    hot_same = find_counterexample(a, a.cleanup())
    hot_diff = find_counterexample(a, b)
    with hotpath.disabled():
        ref_same = find_counterexample(a, a.cleanup())
        ref_diff = find_counterexample(a, b)
    assert hot_same is None and ref_same is None
    if ref_diff is None:
        assert hot_diff is None
    else:
        assert hot_diff is not None
        assert (hot_diff.inputs, hot_diff.po_index) == \
            (ref_diff.inputs, ref_diff.po_index)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_stage_guard_fast_check_matches_reference(seed):
    ref_net = make_random_aig(9, 45, seed, num_pos=5)
    other = make_random_aig(9, 45, seed + 7, num_pos=5)
    guard_hot = StageGuard(ref_net.cleanup())
    with hotpath.disabled():
        guard_ref = StageGuard(ref_net.cleanup())
        cex_same_ref = guard_ref.fast_check(ref_net.cleanup())
        cex_diff_ref = guard_ref.fast_check(other)
    cex_same_hot = guard_hot.fast_check(ref_net.cleanup())
    cex_diff_hot = guard_hot.fast_check(other)
    assert cex_same_hot is None and cex_same_ref is None
    if cex_diff_ref is None:
        assert cex_diff_hot is None
    else:
        assert cex_diff_hot is not None
        assert (cex_diff_hot.inputs, cex_diff_hot.po_index) == \
            (cex_diff_ref.inputs, cex_diff_ref.po_index)


def test_wide_mask_and_pack_rounds_layout():
    assert wide_mask(1) == (1 << 64) - 1
    assert wide_mask(3) == (1 << 192) - 1
    rounds = [[1, 2], [3, 4]]
    packed = pack_rounds(rounds)
    assert packed == [1 | (3 << 64), 2 | (4 << 64)]
    assert pack_rounds([]) == []


# -- SOP hot paths ------------------------------------------------------------

def _random_cover(rng, num_vars, num_cubes):
    from repro.sop.sop import Sop
    sop = Sop()
    for _ in range(num_cubes):
        pos = neg = 0
        for v in range(num_vars):
            r = rng.random()
            if r < 0.3:
                pos |= 1 << v
            elif r < 0.45:
                neg |= 1 << v
        sop.add_cube((pos, neg))
    return sop


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_sop_division_matches_reference(seed):
    from repro.sop.division import divide, divide_by_cube
    rng = random.Random(seed)
    nv = rng.randrange(2, 9)
    f = _random_cover(rng, nv, rng.randrange(1, 9))
    d = _random_cover(rng, nv, rng.randrange(1, 4))
    cube = (rng.getrandbits(nv), rng.getrandbits(nv) & ~f.support_mask())
    q_hot, r_hot = divide(f, d)
    qc_hot, rc_hot = divide_by_cube(f, cube)
    with hotpath.disabled():
        q_ref, r_ref = divide(f, d)
        qc_ref, rc_ref = divide_by_cube(f, cube)
    assert q_hot.cubes == q_ref.cubes
    assert r_hot.cubes == r_ref.cubes
    assert qc_hot.cubes == qc_ref.cubes
    assert rc_hot.cubes == rc_ref.cubes


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_sop_best_kernel_matches_reference(seed):
    from repro.sop.kernels import best_kernel, kernel_value, kernels
    rng = random.Random(seed)
    nv = rng.randrange(3, 10)
    nodes = [_random_cover(rng, nv, rng.randrange(2, 7))
             for _ in range(rng.randrange(2, 7))]
    cache: dict = {}
    found_cached = best_kernel(nodes, _cache=cache)
    found_replay = best_kernel(nodes, _cache=cache)
    found_plain = best_kernel(nodes)
    with hotpath.disabled():
        found_ref = best_kernel(nodes)
    for found in (found_cached, found_replay, found_plain):
        if found_ref is None:
            assert found is None
        else:
            assert found is not None
            assert found[0].cubes == found_ref[0].cubes
            assert found[1] == found_ref[1]
    for node in nodes[:2]:
        for kernel, _ck in kernels(node, 10):
            v_hot = kernel_value(nodes, kernel)
            with hotpath.disabled():
                v_ref = kernel_value(nodes, kernel)
            assert v_hot == v_ref


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_sop_add_cube_matches_reference(seed):
    from repro.sop.sop import Sop
    rng = random.Random(seed)
    nv = rng.randrange(2, 8)
    cubes = []
    for _ in range(rng.randrange(1, 14)):
        cubes.append((rng.getrandbits(nv), rng.getrandbits(nv)))
    hot = Sop(cubes)
    with hotpath.disabled():
        ref = Sop(cubes)
    assert hot.cubes == ref.cubes
