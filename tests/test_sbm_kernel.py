"""Tests for heterogeneous elimination/kerneling (Section IV-B)."""

from repro.partition.partitioner import PartitionConfig
from repro.sat.equivalence import assert_equivalent, check_equivalence
from repro.sbm.config import KernelConfig
from repro.sbm.hetero_kernel import (
    KernelStats,
    hetero_kernel_pass,
    homogeneous_kernel_pass,
)


def test_function_preserved_on_random(random_aig_factory):
    for seed in range(4):
        aig = random_aig_factory(10, 180, seed=seed)
        reference = aig.cleanup()
        hetero_kernel_pass(aig)
        aig.check()
        ok, _ = check_equivalence(reference, aig.cleanup())
        assert ok, seed


def test_reduces_shareable_logic(random_aig_factory):
    improved = 0
    for seed in range(4):
        aig = random_aig_factory(10, 180, seed=seed)
        before = aig.cleanup().num_ands
        hetero_kernel_pass(aig)
        if aig.cleanup().num_ands < before:
            improved += 1
    assert improved >= 2


def test_never_grows(random_aig_factory):
    """Move contract: splices are only accepted at gain >= 0."""
    for seed in range(3):
        aig = random_aig_factory(10, 150, seed=seed + 20)
        before = aig.cleanup().num_ands
        hetero_kernel_pass(aig)
        assert aig.cleanup().num_ands <= before


def test_threshold_wins_recorded(random_aig_factory):
    aig = random_aig_factory(10, 250, seed=1)
    stats = hetero_kernel_pass(aig)
    if stats.partitions_improved:
        assert sum(stats.threshold_wins.values()) == stats.partitions_improved
        for threshold in stats.threshold_wins:
            assert threshold in KernelConfig().eliminate_thresholds


def test_heterogeneous_at_least_as_good_as_single_threshold(random_aig_factory):
    """The Section IV-B claim: per-partition threshold choice beats any one
    homogeneous threshold (here: is never worse than the worst one)."""
    results = {}
    for mode in ("hetero", -1, 50):
        aig = random_aig_factory(10, 220, seed=5)
        if mode == "hetero":
            hetero_kernel_pass(aig)
        else:
            homogeneous_kernel_pass(aig, mode)
        results[mode] = aig.cleanup().num_ands
    assert results["hetero"] <= max(results[-1], results[50])


def test_custom_partition_config(random_aig_factory):
    aig = random_aig_factory(8, 120, seed=6)
    reference = aig.cleanup()
    config = KernelConfig(partition=PartitionConfig(max_levels=4,
                                                    max_size=30,
                                                    max_leaves=16))
    stats = hetero_kernel_pass(aig, config)
    assert stats.partitions > 1
    assert_equivalent(reference, aig.cleanup())
