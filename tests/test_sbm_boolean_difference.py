"""Tests for the Boolean-difference resubstitution engine (Section III)."""

import random

from repro.aig.aig import Aig, lit_not
from repro.partition.partitioner import PartitionConfig
from repro.sat.equivalence import assert_equivalent, check_equivalence
from repro.sbm.boolean_difference import (
    BooleanDifferenceStats,
    boolean_difference_pass,
)
from repro.sbm.config import BooleanDifferenceConfig


def fig1_style_network():
    """f equals g xor (x1·x5) but is built expansively (see experiments.fig1)."""
    aig = Aig()
    x1, x2, x3, x4, x5 = aig.add_pis(5)
    g = aig.add_or(aig.add_and(x1, x2), aig.add_and(x3, aig.add_or(x4, x5)))
    t1 = aig.add_and(x1, aig.add_and(x2, lit_not(aig.add_and(x1, x5))))
    t2 = aig.add_and(x3, aig.add_and(aig.add_or(x4, x5),
                                     lit_not(aig.add_and(x1, x5))))
    t3 = aig.add_and(aig.add_and(x1, x5), lit_not(g))
    aig.add_po(aig.add_or(aig.add_or(t1, t2), t3), "f")
    aig.add_po(g, "g")
    return aig.cleanup()


def test_finds_difference_rewrite_on_fig1_network():
    aig = fig1_style_network()
    reference = aig.cleanup()
    before = aig.num_ands
    stats = boolean_difference_pass(aig)
    aig.check()
    assert stats.rewrites >= 1
    assert aig.cleanup().num_ands < before
    assert_equivalent(reference, aig.cleanup())


def test_function_preserved_on_random(random_aig_factory):
    for seed in range(5):
        aig = random_aig_factory(10, 200, seed=seed)
        reference = aig.cleanup()
        boolean_difference_pass(aig)
        aig.check()
        ok, _ = check_equivalence(reference, aig.cleanup())
        assert ok, seed


def test_stats_accounting(random_aig_factory):
    aig = random_aig_factory(10, 150, seed=7)
    stats = boolean_difference_pass(aig)
    assert stats.partitions >= 1
    assert stats.pairs_tried > 0
    filtered = (stats.pairs_filtered_support + stats.pairs_filtered_inclusion
                + stats.pairs_filtered_bdd_size + stats.pairs_filtered_saving)
    assert filtered > 0  # the filters of Section III-B/C fire


def test_bdd_size_filter_blocks_large_differences(random_aig_factory):
    aig = random_aig_factory(10, 200, seed=3)
    tight = BooleanDifferenceConfig(bdd_size_limit=1)
    stats = boolean_difference_pass(aig, tight)
    # With a size-1 limit almost everything is filtered
    assert stats.pairs_filtered_bdd_size + stats.pairs_filtered_saving > 0


def test_monolithic_partition(random_aig_factory):
    """Whole-network run (the Section III-B claim configuration)."""
    aig = random_aig_factory(10, 150, seed=4)
    reference = aig.cleanup()
    config = BooleanDifferenceConfig(
        partition=PartitionConfig(max_levels=10 ** 6, max_size=10 ** 6,
                                  max_leaves=10 ** 6))
    stats = boolean_difference_pass(aig, config)
    assert stats.partitions == 1
    assert_equivalent(reference, aig.cleanup())


def test_memory_limit_bails_out_not_crashes(random_aig_factory):
    aig = random_aig_factory(12, 250, seed=5)
    reference = aig.cleanup()
    config = BooleanDifferenceConfig(bdd_node_limit=60)
    stats = boolean_difference_pass(aig, config)
    aig.check()
    assert_equivalent(reference, aig.cleanup())


def test_xor_cost_affects_acceptance(random_aig_factory):
    """A prohibitive xor_cost must suppress rewrites (saving filter).

    The two runs diverge structurally after the first accepted rewrite, so
    raw filter counters are not comparable between them — the invariant is
    that the prohibitive cost rejects candidates (the saving filter fires)
    and accepts at most the xor-free subset of what the cheap run accepts.
    """
    aig1 = random_aig_factory(10, 200, seed=6)
    aig2 = aig1.cleanup()
    cheap = boolean_difference_pass(
        aig1, BooleanDifferenceConfig(xor_cost=0))
    expensive = boolean_difference_pass(
        aig2, BooleanDifferenceConfig(xor_cost=10 ** 6))
    assert expensive.pairs_filtered_saving > 0
    assert expensive.rewrites <= cheap.rewrites
    assert expensive.rewrites == 0 or expensive.gain <= cheap.gain
