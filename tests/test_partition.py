"""Tests for the partitioning engine and window splicing."""

from repro.aig.aig import Aig, lit_node
from repro.aig.traversal import node_level_map
from repro.partition.partitioner import (
    PartitionConfig,
    extract_window_aig,
    partition_network,
    refresh_window,
    splice_window,
)
from repro.partition.window import collect_window
from repro.sat.equivalence import assert_equivalent


def test_every_node_in_exactly_one_window(random_aig_factory):
    aig = random_aig_factory(10, 200, seed=0)
    windows = partition_network(aig, PartitionConfig(max_levels=5,
                                                     max_size=40,
                                                     max_leaves=20))
    assigned = [n for w in windows for n in w.nodes]
    assert sorted(assigned) == sorted(aig.topological_order())
    assert len(set(assigned)) == len(assigned)


def test_window_limits_respected(random_aig_factory):
    aig = random_aig_factory(10, 300, seed=1)
    config = PartitionConfig(max_levels=6, max_size=30, max_leaves=18)
    for w in partition_network(aig, config):
        assert w.size <= config.max_size
        lo, hi = w.level_span
        assert hi - lo < config.max_levels


def test_window_leaves_feed_members(random_aig_factory):
    aig = random_aig_factory(8, 150, seed=2)
    for w in partition_network(aig, PartitionConfig(max_levels=8,
                                                    max_size=50,
                                                    max_leaves=30)):
        members = set(w.nodes)
        for n in w.nodes:
            for f in aig.fanins(n):
                fn = lit_node(f)
                assert fn in members or fn in set(w.leaves) or fn == 0


def test_roots_cover_external_references(random_aig_factory):
    aig = random_aig_factory(8, 150, seed=3)
    po_nodes = {lit_node(po) for po in aig.pos()}
    for w in partition_network(aig, PartitionConfig(max_levels=8,
                                                    max_size=50,
                                                    max_leaves=30)):
        members = set(w.nodes)
        roots = set(w.roots)
        for n in w.nodes:
            external = (n in po_nodes
                        or any(t not in members for t in aig.fanout_nodes(n)))
            if external:
                assert n in roots


def test_extract_and_identity_splice(random_aig_factory):
    aig = random_aig_factory(8, 120, seed=4)
    reference = aig.cleanup()
    windows = partition_network(aig, PartitionConfig(max_levels=6,
                                                     max_size=40,
                                                     max_leaves=24))
    for w in windows:
        sub, _mapping, root_to_po = extract_window_aig(aig, w)
        assert sub.num_pis == len(w.leaves)
        assert sub.num_pos == len(w.roots)
        delta = splice_window(aig, w, sub)
        assert delta == 0
    aig.check()
    assert_equivalent(reference, aig.cleanup())


def test_splice_optimized_window(random_aig_factory):
    from repro.opt.scripts import quick_optimize
    aig = random_aig_factory(8, 150, seed=5)
    reference = aig.cleanup()
    windows = partition_network(aig, PartitionConfig(max_levels=10,
                                                     max_size=80,
                                                     max_leaves=24))
    for w in windows:
        sub, _m, _r = extract_window_aig(aig, w)
        optimized = quick_optimize(sub)
        if optimized.num_ands < sub.num_ands:
            splice_window(aig, w, optimized)
            break
    aig.check()
    assert_equivalent(reference, aig.cleanup())


def test_refresh_window_after_edits(random_aig_factory):
    aig = random_aig_factory(8, 100, seed=6)
    windows = partition_network(aig, PartitionConfig(max_levels=8,
                                                     max_size=50,
                                                     max_leaves=24))
    w = max(windows, key=lambda win: win.size)
    # kill a member by replacing it with one of its fanins
    victim = w.nodes[-1]
    aig.replace(victim, aig.fanins(victim)[0])
    refreshed = refresh_window(aig, w)
    assert refreshed is not None
    assert victim not in refreshed.nodes
    assert all(aig.is_and(n) for n in refreshed.nodes)


class TestNodeWindows:
    def test_pivot_last_in_cone(self, random_aig_factory):
        aig = random_aig_factory(8, 100, seed=7)
        levels = node_level_map(aig)
        for n in list(aig.ands())[:30]:
            w = collect_window(aig, n, levels=levels)
            assert w is not None
            assert w.cone[-1] == n

    def test_divisors_exclude_pivot_tfo(self, random_aig_factory):
        from repro.aig.traversal import transitive_fanout
        aig = random_aig_factory(8, 100, seed=8)
        for n in list(aig.ands())[:20]:
            w = collect_window(aig, n, max_divisors=50)
            tfo = transitive_fanout(aig, [n])
            for d in w.divisors:
                assert d not in tfo or d == n

    def test_leaf_bound(self, random_aig_factory):
        aig = random_aig_factory(10, 150, seed=9)
        for n in list(aig.ands())[:20]:
            w = collect_window(aig, n, max_leaves=6)
            assert len(w.leaves) <= 8  # small slack for the final expansion

    def test_pi_pivot_rejected(self):
        aig = Aig()
        a = aig.add_pi()
        aig.add_po(a)
        assert collect_window(aig, lit_node(a)) is None
