"""Tests for traversal utilities (cones, supports, similarity)."""

from repro.aig.aig import Aig, lit_node, lit_not
from repro.aig.traversal import (
    all_supports,
    cone_inclusion,
    node_level_map,
    structural_support,
    support_similarity,
    topological_order_all,
    transitive_fanin,
    transitive_fanout,
)


def _diamond():
    """a, b -> shared -> two branches -> top; returns (aig, node ids)."""
    aig = Aig()
    a, b, c = aig.add_pis(3)
    shared = aig.add_and(a, b)
    left = aig.add_and(shared, c)
    right = aig.add_and(shared, lit_not(c))
    top = aig.add_or(left, right)
    aig.add_po(top)
    nodes = {name: lit_node(x) for name, x in
             [("shared", shared), ("left", left), ("right", right),
              ("top", top)]}
    return aig, nodes


def test_transitive_fanin_includes_roots_and_pis():
    aig, nodes = _diamond()
    tfi = transitive_fanin(aig, [nodes["top"]])
    assert nodes["top"] in tfi
    assert nodes["shared"] in tfi
    assert all(p in tfi for p in aig.pis())


def test_transitive_fanin_without_pis():
    aig, nodes = _diamond()
    tfi = transitive_fanin(aig, [nodes["top"]], include_pis=False)
    assert all(aig.is_and(n) for n in tfi)


def test_transitive_fanout():
    aig, nodes = _diamond()
    tfo = transitive_fanout(aig, [nodes["shared"]])
    assert nodes["left"] in tfo
    assert nodes["right"] in tfo
    assert nodes["top"] in tfo


def test_structural_support():
    aig, nodes = _diamond()
    sup = structural_support(aig, nodes["shared"])
    assert sup == set(aig.pis()[:2])


def test_all_supports_matches_individual(random_aig_factory):
    aig = random_aig_factory(6, 60, seed=4)
    supports = all_supports(aig)
    for n in list(aig.ands())[:20]:
        assert supports[n] == frozenset(structural_support(aig, n))


def test_support_similarity_bounds():
    assert support_similarity(frozenset(), frozenset()) == 1.0
    assert support_similarity(frozenset({1}), frozenset({2})) == 0.0
    assert support_similarity(frozenset({1, 2}), frozenset({2, 3})) == 1 / 3


def test_cone_inclusion_full_and_partial():
    aig, nodes = _diamond()
    # shared's cone is fully inside top's cone
    assert cone_inclusion(aig, nodes["shared"], nodes["top"]) == 1.0
    # top's cone is not fully inside shared's cone
    assert cone_inclusion(aig, nodes["top"], nodes["shared"]) < 1.0


def test_topological_order_all_covers_dangling():
    aig = Aig()
    a, b = aig.add_pis(2)
    used = aig.add_and(a, b)
    dangling = aig.add_and(a, lit_not(b))
    aig.add_po(used)
    order = topological_order_all(aig)
    assert lit_node(dangling) in order
    assert lit_node(used) in order


def test_node_level_map_consistent_with_depth(random_aig_factory):
    aig = random_aig_factory(8, 120, seed=6)
    levels = node_level_map(aig)
    assert max(levels[lit_node(po)] for po in aig.pos()) == aig.depth
