"""Cross-module integration tests: full pipelines on real benchmark circuits.

Includes the regression scenario that exposed the MSPF observability bug
(kernel splices promoting window members to roots mid-sweep) during
development: the full gradient engine on a mixed datapath/control design.
"""


from repro.bench.registry import get_benchmark
from repro.mapping.lut import map_luts
from repro.sat.equivalence import assert_equivalent, check_equivalence
from repro.sbm.config import FlowConfig, GradientConfig
from repro.sbm.flow import sbm_flow
from repro.sbm.gradient import gradient_optimize


def test_sbm_flow_on_cavlc_benchmark():
    aig = get_benchmark("cavlc")
    optimized, stats = sbm_flow(aig, FlowConfig(iterations=1))
    assert_equivalent(aig, optimized)
    assert optimized.num_ands < aig.num_ands


def test_sbm_flow_on_router_benchmark():
    aig = get_benchmark("router")
    optimized, _stats = sbm_flow(aig, FlowConfig(iterations=1))
    assert_equivalent(aig, optimized)
    assert optimized.num_ands <= aig.num_ands


def test_optimize_then_map_pipeline():
    aig = get_benchmark("priority")
    optimized, _stats = sbm_flow(aig, FlowConfig(iterations=1))
    assert_equivalent(aig, optimized)
    mapping = map_luts(optimized, k=6)
    baseline_mapping = map_luts(aig, k=6)
    assert mapping.area <= baseline_mapping.area * 1.2


def test_regression_gradient_on_mixed_design():
    """The asic02 scenario: kernel + mspf moves interleaved by the gradient
    engine on a design mixing datapath and control logic.  Broke twice
    during development (replace-cascade GC, MSPF stale roots)."""
    from repro.asic.designs import generate_design
    from repro.opt.scripts import resyn2rs

    aig = generate_design(2)
    optimized = resyn2rs(aig.cleanup(), max_iterations=1)
    gradient_optimize(optimized, GradientConfig(cost_budget=120))
    optimized.check()
    ok, _cex = check_equivalence(aig, optimized.cleanup())
    assert ok


def test_regression_many_seeds_gradient_structural_integrity():
    """Replay of the fuzz that found the dead-fanin GC bugs."""
    from tests.conftest import make_random_aig

    for seed in (11, 15):  # the two crashing seeds
        aig = make_random_aig(10, 250, seed=seed)
        reference = aig.cleanup()
        gradient_optimize(aig, GradientConfig(cost_budget=30))
        aig.check()
        ok, _ = check_equivalence(reference, aig.cleanup())
        assert ok


def test_netlist_flow_end_to_end():
    """Benchmark → SBM → techmap → place → STA → power, all consistent."""
    from repro.asic.place import place
    from repro.asic.power import analyze_power
    from repro.asic.sta import analyze_timing
    from repro.asic.techmap import tech_map

    aig = get_benchmark("router")
    optimized, _stats = sbm_flow(aig, FlowConfig(iterations=1))
    netlist = tech_map(optimized)
    placement = place(netlist)
    timing = analyze_timing(netlist, clock_period=1e9, placement=placement)
    power = analyze_power(netlist, placement)
    assert timing.met
    assert timing.critical_path_delay > 0
    assert power.dynamic > 0
    # and the mapped netlist matches the optimized AIG functionally
    import random

    from repro.aig.simulate import po_words, simulate_words
    from repro.asic.power import simulate_netlist

    rng = random.Random(0)
    words = [rng.getrandbits(64) for _ in range(optimized.num_pis)]
    golden = po_words(optimized, simulate_words(optimized, words))
    inputs = {optimized.pi_name(i): words[i]
              for i in range(optimized.num_pis)}
    values = simulate_netlist(netlist, inputs)
    assert [values[net] for _p, net in netlist.outputs] == golden


def test_aiger_export_of_optimized_result(tmp_path):
    from repro.aig.io_aiger import read_aag, write_aag

    aig = get_benchmark("cavlc")
    optimized, _ = sbm_flow(aig, FlowConfig(iterations=1))
    path = str(tmp_path / "cavlc_opt.aag")
    write_aag(optimized, path)
    back = read_aag(path)
    assert_equivalent(optimized, back)
