"""Overhead of the observability layer: tracer off vs tracer on.

The ``repro.obs`` contract is that disabled instrumentation is free —
every call site runs ``with obs.span(...)`` / ``obs.metrics().inc(...)``
unconditionally, and the null singletons must make that a few attribute
lookups.  This benchmark quantifies both directions on a mid-size AIG:

* **disabled overhead** — the full SBM flow with observability off is
  compared against the microbenchmarked cost of the null call sites,
  asserting the instrumentation accounts for well under 2% of the flow;
* **enabled overhead** — the same flow with a live tracer + registry,
  reporting the price of ``--trace`` (informational: tracing is opt-in);
* **live-bus overhead** — the flow with the :mod:`repro.obs.live`
  progress bus enabled and a background pump draining it, the price of
  ``--progress`` (contract: < 2%), plus the microbenchmarked cost of a
  disabled-bus call site (one ``bus.enabled`` attribute check).

Results are recorded in ``results/obs_overhead.txt`` and the
machine-readable ``BENCH_obs.json`` at the repo root by
``python benchmarks/bench_obs.py``; under pytest the assertions guard
against an overhead regression.
"""

from __future__ import annotations

import time

from repro import obs
from repro.obs.live import LivePump
from repro.sbm.config import FlowConfig
from repro.sbm.flow import sbm_flow
from tests.conftest import make_random_aig

#: Instrumented call sites hammered per microbench sample.
CALLS = 200_000


def _network():
    # Mid-size: thousands of gradient move attempts, hundreds of windows —
    # enough instrumented call sites for the overhead to show if it exists.
    return make_random_aig(12, 3000, seed=99)


def _flow_once(enabled: bool, live: bool = False) -> float:
    aig = _network()
    if enabled:
        obs.enable()
    pump = None
    if live:
        bus = obs.enable_live()
        pump = LivePump(bus, sinks=[], poll_s=0.05).start()
    try:
        start = time.perf_counter()
        sbm_flow(aig, FlowConfig(iterations=1))
        return time.perf_counter() - start
    finally:
        if live:
            obs.disable_live()
            pump.stop()
        if enabled:
            obs.disable()


def null_call_site_cost_s() -> float:
    """Seconds per disabled span+counter call site (microbenchmark)."""
    assert not obs.enabled()
    start = time.perf_counter()
    for i in range(CALLS):
        with obs.span("stage", kind="stage", effort=1) as sp:
            sp.set("nodes_after", i)
        obs.metrics().inc("moves", move="resub")
    return (time.perf_counter() - start) / CALLS


def null_bus_site_cost_s() -> float:
    """Seconds per disabled live-bus call site (the ``enabled`` guard)."""
    bus = obs.live_bus()
    assert not bus.enabled
    start = time.perf_counter()
    for i in range(CALLS):
        if bus.enabled:
            bus.emit("stage_end", stage="mspf", nodes=i)
    return (time.perf_counter() - start) / CALLS


def measure() -> dict:
    """Run the comparison; returns the numbers the report prints."""
    off_s = min(_flow_once(enabled=False) for _ in range(2))
    on_s = min(_flow_once(enabled=True) for _ in range(2))
    live_s = min(_flow_once(enabled=False, live=True) for _ in range(2))
    per_site_s = null_call_site_cost_s()
    per_bus_site_s = null_bus_site_cost_s()
    # Upper bound on call sites a flow executes: every span/metric write is
    # tied to a stage, window, or move — count the enabled run's spans and
    # counters as a proxy (each write costs *more* than a null call).
    session = obs.enable()
    try:
        sbm_flow(_network(), FlowConfig(iterations=1))
        spans = _count_spans(session.tracer.roots)
        writes = sum(session.metrics.snapshot()["counters"].values())
    finally:
        obs.disable()
    call_sites = spans + int(writes)
    return {
        "flow_off_s": off_s,
        "flow_on_s": on_s,
        "flow_live_s": live_s,
        "per_site_us": per_site_s * 1e6,
        "per_bus_site_us": per_bus_site_s * 1e6,
        "call_sites": call_sites,
        "disabled_overhead_pct": 100.0 * (per_site_s * call_sites) / off_s,
        "enabled_overhead_pct": 100.0 * (on_s - off_s) / off_s,
        "live_overhead_pct": 100.0 * (live_s - off_s) / off_s,
    }


def _count_spans(spans) -> int:
    return sum(1 + _count_spans(s.children) for s in spans)


def format_results(r: dict) -> str:
    return "\n".join([
        "observability overhead (mid-size random AIG, 1 flow iteration)",
        f"  flow, tracer off : {r['flow_off_s']:7.2f}s",
        f"  flow, tracer on  : {r['flow_on_s']:7.2f}s  "
        f"({r['enabled_overhead_pct']:+.1f}% — the opt-in price of --trace)",
        f"  flow, live bus on: {r['flow_live_s']:7.2f}s  "
        f"({r['live_overhead_pct']:+.1f}% — the price of --progress; "
        f"contract: < 2%)",
        f"  null call site   : {r['per_site_us']:7.3f}us per span+counter",
        f"  null bus site    : {r['per_bus_site_us']:7.4f}us per guarded emit",
        f"  instrumented sites exercised: ~{r['call_sites']}",
        f"  disabled overhead: {r['disabled_overhead_pct']:.3f}% of the flow "
        f"(contract: < 2%)",
    ])


def test_bench_obs_overhead(benchmark):
    results = benchmark.pedantic(measure, iterations=1, rounds=1)
    print()
    print(format_results(results))
    # The contract: when off, instrumentation is invisible.
    assert results["disabled_overhead_pct"] < 2.0
    # Sanity on the microbench itself — a null call site is not a real span.
    assert results["per_site_us"] < 50.0
    # A disabled live-bus site is one attribute check — far below a span.
    assert results["per_bus_site_us"] < 5.0
    # Live streaming must stay near-free; 5% tolerates two-run wall noise
    # on CI machines (the recorded number is typically well under 2%).
    assert results["live_overhead_pct"] < 5.0


if __name__ == "__main__":
    import json
    import os
    import sys
    results = measure()
    text = format_results(results)
    print(text)
    root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    results_dir = os.path.join(root, "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "obs_overhead.txt"), "w") as handle:
        handle.write(text + "\n")
    doc = {"cmdline": "python benchmarks/bench_obs.py " + " ".join(
        sys.argv[1:])}
    doc.update({k: (round(v, 4) if isinstance(v, float) else v)
                for k, v in results.items()})
    with open(os.path.join(root, "BENCH_obs.json"), "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
