"""Section III-B runtime claim — monolithic Boolean-difference runs.

The paper: i2c in 2.3 s and cavlc in 1.2 s, whole-network.  Shape asserted:
the monolithic run is feasible at seconds scale on the scaled benchmarks and
tries thousands of pairs (the quadratic enumeration with its filters).
"""


from repro.experiments.runtime import format_results, run_monolithic


def test_monolithic_boolean_difference(benchmark):
    results = benchmark.pedantic(run_monolithic, iterations=1, rounds=1)
    print()
    print(format_results(results))
    by_name = {r.benchmark: r for r in results}
    assert by_name["i2c"].pairs_tried > 100
    assert by_name["cavlc"].pairs_tried > 100
    # Feasibility: both finish in seconds, like the paper's C++ at native
    # width.
    assert by_name["i2c"].runtime_s < 60
    assert by_name["cavlc"].runtime_s < 60
    # No size regressions.
    assert by_name["cavlc"].size_after <= by_name["cavlc"].size_before
