"""Table II — Smallest AIG results for the EPFL suite.

Regenerates the paper's comparison: resyn2rs-to-convergence (state of the
art proxy) vs the SBM flow.  Shape asserted: the SBM AIGs are never larger,
matching "the size of the AIGs is smaller as compared to the
state-of-the-art".  ``REPRO_BENCH_FULL=1`` runs all 13 Table II benchmarks.
"""


from benchmarks.conftest import full_run
from repro.experiments.table2 import format_results, run_table2
from repro.sbm.config import FlowConfig

SUBSET = ["router", "cavlc", "priority"]


def test_table2_smallest_aigs(benchmark):
    names = None if full_run() else SUBSET
    results = benchmark.pedantic(
        run_table2,
        kwargs={"benchmarks": names,
                "flow_config": FlowConfig(iterations=1)},
        iterations=1, rounds=1)
    print()
    print(format_results(results))
    assert all(r.verified for r in results)
    # Shape: SBM is never larger than the baseline script, and strictly
    # smaller somewhere.
    assert all(r.sbm_size <= r.baseline_size for r in results)
    assert any(r.sbm_size < r.baseline_size for r in results)
    # And everything improves on the unoptimized original.
    assert all(r.sbm_size < r.original_size for r in results)
