"""Table III — Post place&route results on the industrial design suite.

Regenerates the baseline-vs-proposed flow comparison on the synthetic
industrial designs.  Shape asserted (paper: area −2.20%, power −1.15%,
TNS −5.99%, runtime +1.75%): the proposed flow reduces average area and
power, does not worsen TNS, and costs extra runtime.  The default runs 4
designs; ``REPRO_BENCH_FULL=1`` runs all 33.
"""


from benchmarks.conftest import full_run
from repro.experiments.table3 import format_summary, run_table3
from repro.sbm.config import FlowConfig


def test_table3_asic_flow(benchmark):
    count = 33 if full_run() else 4
    summary = benchmark.pedantic(
        run_table3,
        kwargs={"num_designs": count,
                "sbm_config": FlowConfig(iterations=1)},
        iterations=1, rounds=1)
    print()
    print(format_summary(summary))
    assert summary.all_verified()
    area = summary.average_delta("combinational_area")
    power = summary.average_delta("dynamic_power")
    runtime = summary.average_delta("runtime_s")
    assert area is not None and area < 0       # area improves (paper −2.20%)
    assert power is not None and power < 0     # power improves (paper −1.15%)
    assert runtime is not None and runtime > 0  # runtime premium (paper +1.75%)
    tns = summary.average_delta("tns")
    if tns is not None:
        assert tns <= 0  # violations shrink (paper −5.99%)
