"""Table I — New Best Area Results (LUT-6) for the EPFL suite.

Regenerates the paper's rows on the scaled suite: baseline script + LUT-6
map vs SBM flow + LUT-6 map.  Shape asserted: the Boolean methods win (or
tie) the area category on most benchmarks — the paper improved 12 best-known
results.  Set ``REPRO_BENCH_FULL=1`` for all 12 Table I benchmarks.
"""


from benchmarks.conftest import full_run
from repro.experiments.table1 import format_results, run_table1
from repro.sbm.config import FlowConfig

SUBSET = ["priority", "router", "cavlc"]


def test_table1_lut6_area(benchmark):
    names = None if full_run() else SUBSET
    results = benchmark.pedantic(
        run_table1,
        kwargs={"benchmarks": names,
                "flow_config": FlowConfig(iterations=1)},
        iterations=1, rounds=1)
    print()
    print(format_results(results))
    assert all(r.verified for r in results)
    improved = sum(1 for r in results if r.improved)
    # Shape: SBM matches or beats the baseline mapping on most rows.
    assert improved >= len(results) // 2
