"""Ablations of the paper's parameter choices (Sections III-C, IV-A, IV-B)."""


from repro.experiments.ablation import (
    ablate_bdd_reordering,
    ablate_bdd_size_limit,
    ablate_gradient_budget,
    ablate_hetero_vs_homogeneous,
    ablate_mspf_engine,
    ablate_xor_cost,
    format_points,
)


def test_bdd_size_filter_tradeoff(benchmark):
    """Section III-C: larger limits find at least as many rewrites but cost
    more runtime; 10 sits on the knee."""
    points = benchmark.pedantic(ablate_bdd_size_limit, iterations=1, rounds=1)
    print()
    print(format_points("Boolean difference: BDD size filter", points))
    sizes = {p.label: p.size_after for p in points}
    # looser filters can only match or improve QoR
    assert sizes["bdd_size≤50"] <= sizes["bdd_size≤2"]


def test_xor_cost_filter(benchmark):
    """Section III-C: a prohibitive xor_cost suppresses difference rewrites."""
    points = benchmark.pedantic(ablate_xor_cost, iterations=1, rounds=1)
    print()
    print(format_points("Boolean difference: xor_cost", points))
    rewrites = {p.label: p.extra["rewrites"] for p in points}
    assert rewrites["xor_cost=12"] <= rewrites["xor_cost=0"]


def test_gradient_budget_knee(benchmark):
    """Section IV-A: more budget never hurts QoR; 100 captures most of it."""
    points = benchmark.pedantic(ablate_gradient_budget, iterations=1, rounds=1)
    print()
    print(format_points("Gradient engine: cost budget", points))
    sizes = [p.size_after for p in points]  # budgets ascending
    assert sizes[-1] <= sizes[0]


def test_heterogeneous_thresholds_win(benchmark):
    """Section IV-B: choosing the threshold per partition is at least as
    good as the best homogeneous threshold."""
    points = benchmark.pedantic(ablate_hetero_vs_homogeneous,
                                iterations=1, rounds=1)
    print()
    print(format_points("Eliminate thresholds: hetero vs homogeneous",
                        points))
    hetero = next(p for p in points if p.label == "heterogeneous")
    homogeneous = [p for p in points if p.label.startswith("homogeneous")]
    assert hetero.size_after <= min(p.size_after for p in homogeneous)


def test_bdd_reordering_tradeoff(benchmark):
    """Section III-C: the paper skips reordering to save runtime at a
    memory cost; sifting flips the tradeoff (less memory, more time)."""
    points = benchmark.pedantic(ablate_bdd_reordering, iterations=1, rounds=1)
    print()
    print(format_points("BDD reordering on/off", points))
    off = next(p for p in points if "paper" in p.label)
    on = next(p for p in points if "sifting" in p.label)
    assert on.extra["bdd_nodes"] <= off.extra["bdd_nodes"]
    assert on.runtime_s >= off.runtime_s * 0.9


def test_tt_vs_bdd_mspf(benchmark):
    """Section IV-C: the BDD MSPF works on larger sub-circuits than the
    truth-table MSPF of [1]."""
    points = benchmark.pedantic(ablate_mspf_engine, iterations=1, rounds=1)
    print()
    print(format_points("truth-table vs BDD MSPF", points))
    tt = next(p for p in points if "truth-table" in p.label)
    bdd = next(p for p in points if "BDD" in p.label)
    assert bdd.extra["processed"] >= tt.extra["processed"]
