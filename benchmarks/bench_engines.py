"""Microbenchmarks of the individual substrates and engines.

Not tied to a specific paper table; these track the runtime of the pieces
the SBM flow is built from, so performance regressions are visible.
"""

import pytest

from tests.conftest import make_random_aig


@pytest.fixture(scope="module")
def medium_aig():
    return make_random_aig(10, 400, seed=123)


def test_bench_strash_construction(benchmark):
    benchmark(make_random_aig, 10, 400, 7)


def test_bench_simulation(benchmark, medium_aig):
    from repro.aig.simulate import random_words, simulate_words
    words = random_words(medium_aig.num_pis)
    benchmark(simulate_words, medium_aig, words)


def test_bench_cut_enumeration(benchmark, medium_aig):
    from repro.aig.cuts import enumerate_cuts
    benchmark(enumerate_cuts, medium_aig, 6, 8)


def test_bench_bdd_build(benchmark):
    from repro.bdd.manager import BddManager

    def build():
        mgr = BddManager(14)
        acc = 1
        for i in range(0, 14, 2):
            acc = mgr.apply_and(acc, mgr.apply_xor(mgr.var(i), mgr.var(i + 1)))
        return mgr.num_nodes

    benchmark(build)


def test_bench_sat_equivalence(benchmark, medium_aig):
    from repro.sat.equivalence import check_equivalence
    clone = medium_aig.cleanup()
    benchmark(check_equivalence, medium_aig, clone)


def test_bench_rewrite_pass(benchmark):
    from repro.opt.rewrite import rewrite

    def run():
        aig = make_random_aig(10, 300, seed=9)
        return rewrite(aig)

    benchmark.pedantic(run, iterations=1, rounds=2)


def test_bench_resub_pass(benchmark):
    from repro.opt.resub import resub

    def run():
        aig = make_random_aig(10, 300, seed=9)
        return resub(aig)

    benchmark.pedantic(run, iterations=1, rounds=2)


def test_bench_boolean_difference_pass(benchmark):
    from repro.sbm.boolean_difference import boolean_difference_pass

    def run():
        aig = make_random_aig(10, 300, seed=9)
        return boolean_difference_pass(aig).gain

    benchmark.pedantic(run, iterations=1, rounds=2)


def test_bench_mspf_pass(benchmark):
    from repro.sbm.mspf import mspf_pass

    def run():
        aig = make_random_aig(10, 300, seed=9)
        return mspf_pass(aig).gain

    benchmark.pedantic(run, iterations=1, rounds=2)


def test_bench_lut_mapping(benchmark, medium_aig):
    from repro.mapping.lut import map_luts
    benchmark(map_luts, medium_aig, 6)


def test_bench_tech_mapping(benchmark, medium_aig):
    from repro.asic.techmap import tech_map
    benchmark.pedantic(tech_map, args=(medium_aig,), iterations=1, rounds=2)
