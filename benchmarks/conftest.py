"""Shared configuration for the benchmark harness.

Every benchmark prints the paper-style table it regenerates (captured by
pytest's ``-s`` or visible in the benchmark summary), and asserts the
qualitative *shape* the paper claims — who wins and in which direction —
rather than absolute numbers, which depend on the substrate.

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — run every benchmark of each table instead of the
  representative subset (hours of pure-Python runtime).
* ``REPRO_BENCH_CACHE_DIR=DIR`` — activate the campaign result cache
  (``repro.campaign``) for every flow the benchmarks run: a table rerun
  against a warm cache replays stored networks instead of re-optimizing,
  so only mapping/verification/baseline time is measured again.
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE_DIR") or None


def full_run() -> bool:
    """True when the exhaustive benchmark sweep was requested."""
    return FULL


@pytest.fixture(autouse=True)
def _campaign_cache():
    """Route every benchmark's flows through REPRO_BENCH_CACHE_DIR, if set."""
    if CACHE_DIR is None:
        yield
        return
    from repro.campaign.cache import cache_context
    with cache_context(CACHE_DIR):
        yield
