"""Shared configuration for the benchmark harness.

Every benchmark prints the paper-style table it regenerates (captured by
pytest's ``-s`` or visible in the benchmark summary), and asserts the
qualitative *shape* the paper claims — who wins and in which direction —
rather than absolute numbers, which depend on the substrate.

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — run every benchmark of each table instead of the
  representative subset (hours of pure-Python runtime).
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def full_run() -> bool:
    """True when the exhaustive benchmark sweep was requested."""
    return FULL
