"""Figure 1 — Boolean difference example (regenerates the figure's claim)."""


from repro.experiments.fig1 import format_result, run_fig1


def test_fig1_boolean_difference(benchmark):
    result = benchmark(run_fig1)
    print()
    print(format_result(result))
    # Shape: the rewrite f = ∂f/∂g ⊕ g reduces the node count and verifies.
    assert result.reduced
    assert result.verified
    assert result.stats.rewrites >= 1
