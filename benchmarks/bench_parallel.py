"""Serial vs parallel wall time of the partitioned SBM passes.

Runs the same partitioned pass with ``jobs=1`` (the exact serial path) and
``jobs=cpu_count`` through :mod:`repro.parallel`, reports both wall times
and the realized speedup, and asserts the contract that makes the knob safe
to flip: the two runs produce node-for-node identical networks.

On a single-core runner the parallel run only measures the process-pool
overhead (speedup ≈ 1 or below); on multi-core machines the speedup
approaches ``min(jobs, windows)`` for the window-dominated passes.  Set
``REPRO_BENCH_FULL=1`` to sweep every engine instead of the representative
kernel pass.
"""

import os
import time

import pytest

from benchmarks.conftest import full_run
from tests.conftest import make_random_aig
from repro.parallel import CompactAig, run_partitioned_pass
from repro.partition.partitioner import PartitionConfig
from repro.sbm.config import BooleanDifferenceConfig, KernelConfig, MspfConfig

#: Small windows -> many schedulable tasks even on a test-sized network.
PARTS = PartitionConfig(max_levels=6, max_size=80, max_leaves=24)

ENGINES = [
    ("kernel", lambda: KernelConfig(partition=PARTS)),
    ("mspf", lambda: MspfConfig(partition=PARTS)),
    ("bdiff", lambda: BooleanDifferenceConfig(partition=PARTS)),
]


def _network():
    # Few PIs -> a redundant network the engines actually improve, so the
    # determinism assertion compares non-trivial merges.
    return make_random_aig(10, 2000, seed=77)


def _signature(aig):
    c = CompactAig.from_aig(aig)
    return (c.num_pis, tuple(c.gates), tuple(c.outputs))


def _timed_pass(engine, make_config, jobs):
    aig = _network()
    start = time.perf_counter()
    report = run_partitioned_pass(aig, engine, make_config(),
                                  partition_config=PARTS, jobs=jobs)
    return aig, report, time.perf_counter() - start


@pytest.mark.parametrize("engine,make_config", ENGINES,
                         ids=[e[0] for e in ENGINES])
def test_bench_serial_vs_parallel(engine, make_config, benchmark):
    if not full_run() and engine != "kernel":
        pytest.skip("representative subset; REPRO_BENCH_FULL=1 for all")
    jobs = os.cpu_count() or 1

    serial_aig, serial_report, serial_s = _timed_pass(engine, make_config, 1)
    parallel_aig, parallel_report, parallel_s = benchmark.pedantic(
        _timed_pass, args=(engine, make_config, jobs),
        iterations=1, rounds=1)

    speedup = serial_s / parallel_s if parallel_s > 0 else 1.0
    print()
    print(f"{engine}: windows={serial_report.num_windows} "
          f"applied={serial_report.num_applied} "
          f"gain={serial_report.total_gain}")
    print(f"  serial   (jobs=1):  {serial_s:7.2f}s")
    print(f"  parallel (jobs={jobs}): {parallel_s:7.2f}s  "
          f"speedup={speedup:.2f}x")
    print(parallel_report.format_report())

    # The contract that makes the jobs knob safe: identical graphs.
    assert _signature(parallel_aig) == _signature(serial_aig)
    assert parallel_report.num_windows == serial_report.num_windows
    assert parallel_report.total_gain == serial_report.total_gain
